"""Scenario runners: build a network, attach flows, run, collect results.

Three scenario shapes cover every figure in the paper:

* :func:`run_chain` — h-hop chain, one or more (possibly staggered) flows
  end-to-end (Simulations 1, 2 and 3B);
* :func:`run_cross` — h-hop cross with one horizontal and one vertical flow
  (Simulation 3A);
* both return a :class:`RunResult` with per-flow goodput, retransmission
  counts, cwnd traces and optional throughput-dynamics series.

For batch execution the same runs are described declaratively: a
:class:`RunSpec` is a picklable value object naming the topology, flows and
:class:`ScenarioConfig`, and :func:`execute_run` is the pure module-level
function that turns one spec into a :class:`RunResult`.  The campaign engine
ships ``RunSpec`` instances to ``multiprocessing`` workers and hashes them
for its on-disk cache, so a spec must capture *everything* the run depends
on and nothing else.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.drai import DraiEstimator, install_drai
from ..faults import install_faults
from ..obs.metrics import collect_network_metrics
from ..obs.provenance import attach_spec, build_manifest, stable_digest
from ..phy.error_models import NoError, PacketErrorRate
from ..routing import install_aodv_routing, install_static_routing
from ..stats.fairness import jain_index
from ..stats.throughput import ThroughputSampler
from ..topology import Network, build_chain, build_cross
from ..traffic import FtpFlow, start_ftp
from .config import ScenarioConfig

#: Hook invoked with ``(network, flows)`` after a scenario is built but
#: before it runs — the attachment point for sinks, probes and recorders.
Instrument = Callable[[Network, List[FtpFlow]], None]


@dataclass
class FlowResult:
    """Outcome of one flow."""

    variant: str
    goodput_kbps: float
    delivered_packets: int
    data_sent: int
    retransmits: int
    timeouts: int
    fast_retransmits: int
    start_time: float
    cwnd_trace: List[Tuple[float, float]]
    rate_series_kbps: List[Tuple[float, float]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe plain-data form (tuples become 2-item lists)."""
        return {
            "variant": self.variant,
            "goodput_kbps": self.goodput_kbps,
            "delivered_packets": self.delivered_packets,
            "data_sent": self.data_sent,
            "retransmits": self.retransmits,
            "timeouts": self.timeouts,
            "fast_retransmits": self.fast_retransmits,
            "start_time": self.start_time,
            "cwnd_trace": [[t, v] for t, v in self.cwnd_trace],
            "rate_series_kbps": [[t, v] for t, v in self.rate_series_kbps],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FlowResult":
        data = dict(payload)
        data["cwnd_trace"] = [(t, v) for t, v in data["cwnd_trace"]]
        data["rate_series_kbps"] = [(t, v) for t, v in data["rate_series_kbps"]]
        return cls(**data)


@dataclass
class RunResult:
    """Outcome of one scenario run.

    ``metrics`` is the run's deterministic observability snapshot
    (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`): a pure function
    of the seeded run, so it serializes with the result and participates in
    fingerprints.  ``manifest`` carries environment facts (wall time,
    platform, package version) and is therefore *excluded* from
    :meth:`to_dict` — two identical runs must serialize byte-identically.
    """

    flows: List[FlowResult]
    sim_time: float
    mac_drops: int
    link_failures: int
    metrics: Dict[str, Any] = field(default_factory=dict)
    manifest: Optional[Dict[str, Any]] = field(default=None, compare=False)

    @property
    def total_goodput_kbps(self) -> float:
        return sum(flow.goodput_kbps for flow in self.flows)

    @property
    def total_delivered_packets(self) -> int:
        """Data packets delivered end-to-end, summed over flows — the
        work unit behind the ``full_run_packets_per_sec`` bench metric."""
        return sum(flow.delivered_packets for flow in self.flows)

    @property
    def fairness(self) -> float:
        """Jain index over the flows' goodputs (Fig. 5.14)."""
        return jain_index([flow.goodput_kbps for flow in self.flows])

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe plain-data form, stable across processes.

        Deliberately omits ``manifest``: it holds wall-clock/platform facts
        that differ between identical runs, and this dict is what the
        campaign engine fingerprints for determinism checks.
        """
        return {
            "flows": [flow.to_dict() for flow in self.flows],
            "sim_time": self.sim_time,
            "mac_drops": self.mac_drops,
            "link_failures": self.link_failures,
            "metrics": self.metrics,
        }

    def result_digest(self) -> str:
        """Content digest of the canonical result — the identity journaled
        by the campaign write-ahead log and stamped into manifests."""
        return stable_digest(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunResult":
        return cls(
            flows=[FlowResult.from_dict(f) for f in payload["flows"]],
            sim_time=payload["sim_time"],
            mac_drops=payload["mac_drops"],
            link_failures=payload["link_failures"],
            metrics=payload.get("metrics", {}),
        )


@dataclass(frozen=True)
class RunSpec:
    """Declarative, picklable description of one scenario run.

    ``kind`` selects the topology/flow shape: ``"chain"`` maps to
    :func:`run_chain` (``variants[i]`` starts at ``starts[i]``), ``"cross"``
    maps to :func:`run_cross` (exactly two variants: horizontal, vertical).
    The embedded config's ``seed`` fully determines the run's randomness.
    """

    kind: str
    hops: int
    variants: Tuple[str, ...]
    starts: Optional[Tuple[float, ...]] = None
    record_dynamics: bool = False
    config: ScenarioConfig = field(default_factory=ScenarioConfig)

    def __post_init__(self) -> None:
        if self.kind not in ("chain", "cross"):
            raise ValueError(f"unknown run kind {self.kind!r}")
        if self.kind == "cross" and len(self.variants) != 2:
            raise ValueError("cross runs take exactly two variants")
        object.__setattr__(self, "variants", tuple(self.variants))
        if self.starts is not None:
            object.__setattr__(self, "starts", tuple(self.starts))

    def with_seed(self, seed: int) -> "RunSpec":
        """A copy whose config carries ``seed`` (specs are immutable)."""
        from dataclasses import replace

        return replace(self, config=self.config.replace(seed=seed))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe plain-data form — the campaign cache hashes this."""
        return {
            "kind": self.kind,
            "hops": self.hops,
            "variants": list(self.variants),
            "starts": list(self.starts) if self.starts is not None else None,
            "record_dynamics": self.record_dynamics,
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunSpec":
        data = dict(payload)
        data["variants"] = tuple(data["variants"])
        if data.get("starts") is not None:
            data["starts"] = tuple(data["starts"])
        data["config"] = ScenarioConfig.from_dict(data["config"])
        return cls(**data)


def execute_run(spec: RunSpec) -> RunResult:
    """Execute one :class:`RunSpec` — a pure function of the spec.

    Module-level and argument-picklable by design: this is the unit of work
    campaign worker processes receive.  The returned result's manifest
    additionally records the full spec, so the run can be replayed (and its
    byte-identity verified) from the manifest alone.
    """
    if spec.kind == "chain":
        result = run_chain(
            spec.hops,
            list(spec.variants),
            config=spec.config,
            starts=list(spec.starts) if spec.starts is not None else None,
            record_dynamics=spec.record_dynamics,
        )
    elif spec.kind == "cross":
        result = run_cross(
            spec.hops,
            spec.variants[0],
            spec.variants[1],
            config=spec.config,
            record_dynamics=spec.record_dynamics,
        )
    else:  # pragma: no cover
        raise ValueError(f"unknown run kind {spec.kind!r}")
    if result.manifest is not None:
        attach_spec(result.manifest, spec.to_dict())
    return result


def replay_manifest(manifest: Dict[str, Any]) -> RunResult:
    """Re-execute the run a manifest describes (requires an embedded spec)."""
    spec = manifest.get("spec")
    if spec is None:
        raise ValueError("manifest carries no spec; cannot replay")
    return execute_run(RunSpec.from_dict(spec))


def verify_manifest(manifest: Dict[str, Any]) -> bool:
    """Replay a manifest's run and check byte-identity of the result.

    True when the re-run's canonical result serialization hashes to the
    manifest's ``result_digest`` — the strong form of the reproduction
    claim (same seed + config ⇒ same result, bit for bit).
    """
    replay = replay_manifest(manifest)
    return stable_digest(replay.to_dict()) == manifest.get("result_digest")


def _needs_drai(variants: Sequence[str]) -> bool:
    return any(v.startswith("muzha") for v in variants)


def _install_routing(network: Network, config: ScenarioConfig) -> None:
    if config.routing == "aodv":
        install_aodv_routing(network.nodes, network.sim)
    elif config.routing == "static":
        install_static_routing(network.nodes, network.channel)
    else:
        raise ValueError(f"unknown routing {config.routing!r}")


def _error_model(config: ScenarioConfig):
    if config.packet_error_rate > 0:
        return PacketErrorRate(config.packet_error_rate)
    return NoError()


def _finish(
    network: Network,
    flows: List[FtpFlow],
    samplers: List[Optional[ThroughputSampler]],
    config: ScenarioConfig,
    setup_s: float = 0.0,
) -> RunResult:
    """Run the built scenario and assemble its result + manifest.

    Also times the run's subsystems (setup / sim loop / metrics harvest /
    serialize) into ``manifest["timings"]`` — environment facts for the
    campaign telemetry layer, deliberately outside the fingerprinted
    result (four ``perf_counter`` calls, off the event hot path).
    """
    wall_start = time.perf_counter()
    network.sim.run(until=config.sim_time)
    wall_time_s = time.perf_counter() - wall_start
    harvest_start = time.perf_counter()
    results: List[FlowResult] = []
    for flow, sampler in zip(flows, samplers):
        active = max(config.sim_time - flow.start_time, 1e-9)
        results.append(
            FlowResult(
                variant=flow.variant,
                goodput_kbps=flow.goodput_kbps(active),
                delivered_packets=flow.sink.delivered_packets,
                data_sent=flow.sender.stats.data_sent,
                retransmits=flow.sender.stats.retransmits,
                timeouts=flow.sender.stats.timeouts,
                fast_retransmits=flow.sender.stats.fast_retransmits,
                start_time=flow.start_time,
                cwnd_trace=list(flow.sender.cwnd_trace),
                rate_series_kbps=sampler.rates_kbps() if sampler else [],
            )
        )
    mac_drops = sum(n.mac.counters.drops_retry_limit for n in network.nodes)
    link_failures = sum(
        n.routing.counters.link_failures for n in network.nodes if n.routing
    )
    metrics = collect_network_metrics(network, flows).snapshot()
    result = RunResult(
        flows=results,
        sim_time=config.sim_time,
        mac_drops=mac_drops,
        link_failures=link_failures,
        metrics=metrics,
    )
    harvest_s = time.perf_counter() - harvest_start
    serialize_start = time.perf_counter()
    result_digest = result.result_digest()
    serialize_s = time.perf_counter() - serialize_start
    result.manifest = build_manifest(
        seed=config.seed,
        config=config.to_dict(),
        sim_time=config.sim_time,
        wall_time_s=wall_time_s,
        metrics=metrics,
        result_digest=result_digest,
        timings={
            "setup_s": setup_s,
            "sim_s": wall_time_s,
            "harvest_s": harvest_s,
            "serialize_s": serialize_s,
        },
        engine=network.channel.lane_counters(),
    )
    return result


def run_chain(
    hops: int,
    variants: Sequence[str],
    config: Optional[ScenarioConfig] = None,
    starts: Optional[Sequence[float]] = None,
    record_dynamics: bool = False,
    instrument: Optional[Instrument] = None,
) -> RunResult:
    """Run ``len(variants)`` end-to-end flows over an h-hop chain.

    Flow ``i`` uses ``variants[i]``, starts at ``starts[i]`` (default 0) and
    runs node 0 -> node h on its own port pair.  ``instrument`` (if given)
    is called with the built network and flows just before the simulation
    runs — the hook trace sinks, probes and flight recorders attach through.
    """
    setup_start = time.perf_counter()
    config = config or ScenarioConfig()
    starts = list(starts or [0.0] * len(variants))
    if len(starts) != len(variants):
        raise ValueError("starts and variants must have equal length")
    network = build_chain(
        hops,
        seed=config.seed,
        error_model=_error_model(config),
        ifq_capacity=config.ifq_capacity,
        phy_lane=config.phy_lane,
    )
    _install_routing(network, config)
    if _needs_drai(variants):
        install_drai(network.nodes, network.sim, params=config.drai_params,
                     policy=config.policy, policy_params=config.policy_params)
    if config.faults is not None:
        install_faults(network, config.faults, horizon=config.sim_time)
    src, dst = network.nodes[0], network.nodes[-1]
    flows: List[FtpFlow] = []
    samplers: List[Optional[ThroughputSampler]] = []
    for i, (variant, start) in enumerate(zip(variants, starts)):
        flow = start_ftp(
            network.sim,
            src,
            dst,
            variant=variant,
            window=config.window,
            mss=config.mss,
            sport=1000 + i,
            dport=2000 + i,
            start_time=start,
        )
        flows.append(flow)
        if record_dynamics:
            sampler = ThroughputSampler(
                network.sim, flow.sink, interval=config.sampler_interval
            )
            network.sim.at(start, sampler.start)
            samplers.append(sampler)
        else:
            samplers.append(None)
    if instrument is not None:
        instrument(network, flows)
    return _finish(network, flows, samplers, config,
                   setup_s=time.perf_counter() - setup_start)


def run_cross(
    hops: int,
    variant_horizontal: str,
    variant_vertical: str,
    config: Optional[ScenarioConfig] = None,
    record_dynamics: bool = False,
    instrument: Optional[Instrument] = None,
) -> RunResult:
    """Run the Fig. 5.15 cross: one flow left->right, one top->bottom."""
    setup_start = time.perf_counter()
    config = config or ScenarioConfig()
    network = build_cross(
        hops,
        seed=config.seed,
        error_model=_error_model(config),
        ifq_capacity=config.ifq_capacity,
        phy_lane=config.phy_lane,
    )
    _install_routing(network, config)
    variants = (variant_horizontal, variant_vertical)
    if _needs_drai(variants):
        install_drai(network.nodes, network.sim, params=config.drai_params,
                     policy=config.policy, policy_params=config.policy_params)
    if config.faults is not None:
        install_faults(network, config.faults, horizon=config.sim_time)
    endpoints = [
        (network.left, network.right),
        (network.top, network.bottom),
    ]
    flows: List[FtpFlow] = []
    samplers: List[Optional[ThroughputSampler]] = []
    for i, (variant, (src, dst)) in enumerate(zip(variants, endpoints)):
        flow = start_ftp(
            network.sim,
            src,
            dst,
            variant=variant,
            window=config.window,
            mss=config.mss,
            sport=1000 + i,
            dport=2000 + i,
        )
        flows.append(flow)
        if record_dynamics:
            sampler = ThroughputSampler(
                network.sim, flow.sink, interval=config.sampler_interval
            ).start()
            samplers.append(sampler)
        else:
            samplers.append(None)
    if instrument is not None:
        instrument(network, flows)
    return _finish(network, flows, samplers, config,
                   setup_s=time.perf_counter() - setup_start)
