"""Write-ahead journal for crash-safe, resumable campaigns.

A campaign at "million-unit grid" scale runs for hours; preemption, OOM
kills and operator Ctrl-C are the norm, not the exception.  The journal
makes an interrupted campaign a *checkpoint* instead of a loss:

* before any dispatch, :meth:`CampaignJournal.begin` records the full plan
  — every ``(index, scenario, replication, seed, digest)`` unit plus a
  ``plan_digest`` over them — so a resume can prove it is continuing the
  *same* campaign (same grid, same base seed, same derived unit seeds);
* every completion is journaled (``done`` records with the run's canonical
  ``result_digest``), every quarantine too (``failed`` records), appended
  as schema-validated NDJSON and fsynced in batches;
* :func:`replay_journal` folds a journal back into a
  :class:`JournalReplay` — completed/failed unit maps plus the interrupted
  flag — which ``run_campaign(resume=...)`` uses to dispatch only the
  remainder, after re-verifying each journaled completion against the
  content-addressed cache (checksum mismatch ⇒ re-execute).

Determinism: the journal never influences seeds or metrics — unit seeds
are derived in :func:`repro.experiments.campaign.plan_campaign` before any
dispatch — so a resumed campaign's fingerprint is byte-identical to an
uninterrupted run's, whatever the pool backend.  The journal only decides
*which* units still need executing.

Durability model: records are flushed per line and fsynced every
:attr:`CampaignJournal.fsync_every` records (and at every
:meth:`~CampaignJournal.checkpoint`), so a hard kill loses at most the
last unsynced batch of completions — those units simply re-execute on
resume.  A killed writer can leave a partial final line;
:func:`replay_journal` tolerates it (and reports it), and
``repro-muzha doctor --repair`` truncates it.

The line shapes are committed in
``repro/obs/schemas/journal_record.schema.json`` and checked by
:func:`repro.obs.validate.validate_journal_file`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..obs.provenance import stable_digest

PathLike = Union[str, Path]

#: Bump when the journal line shapes change incompatibly.
JOURNAL_SCHEMA_VERSION = 1

#: Record kinds a journal may contain (``kind`` field of every line).
JOURNAL_KINDS = ("begin", "planned", "done", "failed", "end")

#: Terminal statuses of one journal generation.  ``ok`` = every planned
#: unit accounted for; ``partial`` = quarantined failures remain;
#: ``interrupted`` = graceful shutdown left unexecuted units (resumable).
JOURNAL_END_STATUSES = ("ok", "partial", "interrupted")

#: How many records may accumulate between fsyncs by default.  Batching
#: amortises the sync cost over many tiny completions; a crash loses at
#: most this many journaled completions (they just re-execute on resume).
DEFAULT_FSYNC_EVERY = 64


class JournalError(ValueError):
    """The journal file is unusable (corrupt, wrong schema, misused)."""


class JournalPlanMismatch(JournalError):
    """A resume was attempted against a journal of a *different* campaign."""


def plan_digest(runs: Sequence[Any]) -> str:
    """Content digest of a campaign plan's unit identities.

    Covers index, scenario key, replication, derived seed and cache digest
    of every unit — everything that defines *which* campaign this is —
    while staying independent of pool mode, jobs, cache directory, and
    every other execution-only knob.
    """
    return stable_digest(
        [
            [run.index, run.scenario, run.replication, run.seed, run.digest]
            for run in runs
        ]
    )


class CampaignJournal:
    """Append-only NDJSON write-ahead journal for one campaign (+ resumes).

    ``resume=False`` (a fresh campaign) refuses to open a path that already
    holds records — silently appending a second campaign to an old journal
    would corrupt both; pass ``resume=True`` (after :func:`replay_journal`)
    to append a resume generation instead.
    """

    def __init__(self, path: PathLike, resume: bool = False,
                 fsync_every: int = DEFAULT_FSYNC_EVERY) -> None:
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self.records_written = 0
        self._unsynced = 0
        if not resume and self.path.exists() and self.path.stat().st_size > 0:
            raise JournalError(
                f"journal {self.path} already exists; resume it with "
                "--resume or remove it to start over"
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream = self.path.open("a", encoding="utf-8", newline="")

    # -- low-level ---------------------------------------------------------------

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record as a flushed NDJSON line (fsync in batches)."""
        json.dump(record, self._stream, separators=(",", ":"),
                  sort_keys=True, default=str)
        self._stream.write("\n")
        self._stream.flush()
        self.records_written += 1
        self._unsynced += 1
        if self._unsynced >= self.fsync_every:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Force the journal to durable storage (flush + fsync)."""
        if self._stream is None:
            return
        self._stream.flush()
        try:
            os.fsync(self._stream.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass
        self._unsynced = 0

    def close(self) -> None:
        if self._stream is not None:
            self.checkpoint()
            self._stream.close()
            self._stream = None  # type: ignore[assignment]

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- campaign lifecycle ------------------------------------------------------

    def begin(self, runs: Sequence[Any], *, pool_mode: str, base_seed: int,
              replications: int, resumed: bool,
              transport: Optional[Dict[str, Any]] = None) -> None:
        """Journal the campaign plan — the write-ahead step.

        Written (and fsynced) *before* any dispatch, so even a campaign
        killed during its very first unit leaves a resumable journal.  The
        per-unit ``planned`` records are written once, by the first
        generation; a resume generation re-states only the ``plan_digest``
        (verified against the original by :meth:`JournalReplay.verify_plan`).

        ``transport`` (cluster campaigns) records the coordinator's
        transport — ``{"kind": "tcp", "endpoint": "host:port"}`` — purely
        as provenance: resumes never reconnect to it (the endpoint is dead
        by definition once a resume is needed), but ``repro-muzha doctor``
        probes it to tell a stale interrupted journal from a campaign that
        is still running.
        """
        record: Dict[str, Any] = {
            "kind": "begin",
            "t": time.time(),
            "schema": JOURNAL_SCHEMA_VERSION,
            "total": len(runs),
            "base_seed": base_seed,
            "replications": replications,
            "pool_mode": pool_mode,
            "plan_digest": plan_digest(runs),
            "resumed": resumed,
        }
        if transport is not None:
            record["transport"] = transport
        self.write(record)
        if not resumed:
            for run in runs:
                self.write({
                    "kind": "planned",
                    "index": run.index,
                    "scenario": run.scenario,
                    "replication": run.replication,
                    "seed": run.seed,
                    "digest": run.digest,
                })
        self.checkpoint()

    def done(self, run: Any, result_digest: str, cached: bool) -> None:
        """One unit completed (its result is in the cache under ``digest``)."""
        self.write({
            "kind": "done",
            "t": time.time(),
            "index": run.index,
            "digest": run.digest,
            "result_digest": result_digest,
            "cached": cached,
        })

    def failed(self, run: Any, error: str, attempts: int) -> None:
        """One unit was quarantined after exhausting its retries."""
        self.write({
            "kind": "failed",
            "t": time.time(),
            "index": run.index,
            "digest": run.digest,
            "error": error,
            "attempts": attempts,
        })

    def end(self, *, status: str, fingerprint: Optional[str], executed: int,
            cache_hits: int, quarantined: int, remaining: int) -> None:
        """Close this generation; always checkpointed."""
        if status not in JOURNAL_END_STATUSES:
            raise ValueError(
                f"unknown journal end status {status!r}; "
                f"expected one of {JOURNAL_END_STATUSES}"
            )
        self.write({
            "kind": "end",
            "t": time.time(),
            "status": status,
            "fingerprint": fingerprint,
            "executed": executed,
            "cache_hits": cache_hits,
            "quarantined": quarantined,
            "remaining": remaining,
        })
        self.checkpoint()


@dataclass
class JournalReplay:
    """A journal folded back into resumable state.

    ``completed`` maps unit index → journaled ``result_digest`` (latest
    record wins across generations); ``failed`` maps index → last error of
    units still quarantined (a later ``done`` clears the failure).
    ``interrupted`` is True when the last generation never wrote its
    ``end`` record or wrote it with status ``interrupted``.
    """

    path: Path
    plan_digest: str
    total: int
    base_seed: int
    replications: int
    pool_mode: str
    completed: Dict[int, str] = field(default_factory=dict)
    failed: Dict[int, str] = field(default_factory=dict)
    planned: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    generations: int = 1
    interrupted: bool = True
    truncated_tail: bool = False
    last_end: Optional[Dict[str, Any]] = None

    @property
    def remaining(self) -> int:
        return self.total - len(self.completed)

    def verify_plan(self, runs: Sequence[Any]) -> None:
        """Raise :class:`JournalPlanMismatch` unless ``runs`` is the same
        campaign this journal was started for."""
        if len(runs) != self.total:
            raise JournalPlanMismatch(
                f"journal {self.path} plans {self.total} units but the "
                f"current grid expands to {len(runs)}; resume must re-run "
                "the exact same campaign (grid, replications, seed)"
            )
        digest = plan_digest(runs)
        if digest != self.plan_digest:
            raise JournalPlanMismatch(
                f"journal {self.path} was written for a different campaign "
                f"(plan digest {self.plan_digest[:12]}… != {digest[:12]}…); "
                "grid, replications and --seed must match the original run"
            )


def read_journal(path: PathLike) -> Tuple[List[Dict[str, Any]], bool]:
    """All parseable records of a journal, in file order.

    Returns ``(records, truncated_tail)``: a partial final line (writer
    killed mid-record) is tolerated and reported rather than fatal — the
    units it would have recorded simply re-execute on resume.  Corrupt
    JSON *before* the final line is a :class:`JournalError`.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        raise JournalError(f"journal not found: {path}")
    truncated = bool(text) and not text.endswith("\n")
    lines = text.splitlines()
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if truncated and lineno == len(lines):
                break  # the torn tail a killed writer leaves behind
            raise JournalError(f"{path}: line {lineno}: invalid JSON ({exc})")
        if not isinstance(record, dict):
            raise JournalError(f"{path}: line {lineno}: record is not an object")
        records.append(record)
    return records, truncated


def replay_journal(path: PathLike) -> JournalReplay:
    """Fold a journal into a :class:`JournalReplay` for ``resume=``."""
    records, truncated = read_journal(path)
    if not records:
        raise JournalError(f"journal {path} holds no records")
    first = records[0]
    if first.get("kind") != "begin":
        raise JournalError(
            f"journal {path} does not start with a begin record "
            f"(got {first.get('kind')!r})"
        )
    schema = first.get("schema")
    if schema != JOURNAL_SCHEMA_VERSION:
        raise JournalError(
            f"journal {path} has schema {schema!r}; this build reads "
            f"schema {JOURNAL_SCHEMA_VERSION}"
        )
    replay = JournalReplay(
        path=Path(path),
        plan_digest=first.get("plan_digest", ""),
        total=int(first.get("total", 0)),
        base_seed=int(first.get("base_seed", 0)),
        replications=int(first.get("replications", 0)),
        pool_mode=str(first.get("pool_mode", "")),
        truncated_tail=truncated,
    )
    generations = 0
    open_generation = False
    for record in records:
        kind = record.get("kind")
        if kind == "begin":
            generations += 1
            open_generation = True
            if record.get("plan_digest") != replay.plan_digest:
                raise JournalError(
                    f"journal {path} mixes campaigns: generation "
                    f"{generations} has a different plan digest"
                )
        elif kind == "planned":
            replay.planned[int(record["index"])] = record
        elif kind == "done":
            index = int(record["index"])
            replay.completed[index] = record.get("result_digest", "")
            replay.failed.pop(index, None)
        elif kind == "failed":
            index = int(record["index"])
            if index not in replay.completed:
                replay.failed[index] = str(record.get("error", ""))
        elif kind == "end":
            open_generation = False
            replay.last_end = record
    replay.generations = generations
    replay.interrupted = open_generation or (
        replay.last_end is not None
        and replay.last_end.get("status") == "interrupted"
    )
    return replay


__all__ = [
    "CampaignJournal",
    "DEFAULT_FSYNC_EVERY",
    "JOURNAL_END_STATUSES",
    "JOURNAL_KINDS",
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "JournalPlanMismatch",
    "JournalReplay",
    "plan_digest",
    "read_journal",
    "replay_journal",
]
