"""Pluggable content-addressed result stores for campaign sharding.

The campaign engine memoises completed runs in a content-addressed store
keyed by :func:`repro.experiments.campaign.run_digest`.  PR 5 hard-coded
that store to one local directory; cluster-scale sharding (PR 10) needs
the *same* envelope contract to be servable over a network so that every
shard of a distributed campaign — the coordinator and every remote worker
agent — reads and writes one shared memo.  This module lifts the store
behind a small interface:

* :class:`CacheStore` — the abstract contract: ``get``/``put`` of
  ``{"result", "manifest"}`` payloads under a digest, plus the eviction
  counter the campaign result reports;
* :class:`CampaignCache` — the local directory store, byte-for-byte the
  PR 5 implementation (durable atomic writes, advisory ``flock``,
  checksummed envelopes, lazy eviction of corrupt entries);
* :class:`HttpCacheStore` — the same envelopes over plain HTTP
  (``GET``/``PUT``/``DELETE /<digest[:2]>/<digest>.json``), shaped like an
  object store so shards on different hosts can share one cache.  Network
  failures degrade to cache misses — a flaky cache server can slow a
  campaign down but never wreck it;
* :class:`CacheServer` — a stdlib ``ThreadingHTTPServer`` that exposes a
  local :class:`CampaignCache` directory under that protocol (used by the
  tests, the cluster bench and CI; run one near your shards);
* :func:`make_store` — spec-string factory: ``http(s)://…`` becomes an
  :class:`HttpCacheStore`, anything else a :class:`CampaignCache` rooted
  at that path.  This is how a worker agent rebuilds the coordinator's
  store from the spec carried in the transport handshake.

Envelope integrity is end-to-end: the checksum is computed by the writer,
stored inside the envelope, and re-verified by every reader — the HTTP
hop adds no trust, a corrupt byte anywhere surfaces as an eviction and a
recompute, never as different campaign bytes.
"""

from __future__ import annotations

import json
import os
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from .config import stable_digest

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

PathLike = Union[str, Path]

#: Subdirectory of a local cache root holding cluster registration files
#: (coordinator/worker liveness records written by the TCP transport).
#: Everything that walks ``<root>/*/*.json`` must skip it.
CLUSTER_REGISTRY_DIRNAME = ".cluster"


class CacheCorruptionWarning(UserWarning):
    """A campaign cache entry failed validation and was evicted."""


def _envelope_checksum(result: Dict[str, Any],
                       manifest: Optional[Dict[str, Any]]) -> str:
    return stable_digest({"manifest": manifest, "result": result})


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a rename into it survives a crash/power cut."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - exotic filesystems
        pass
    finally:
        os.close(fd)


class CacheStore:
    """Contract every campaign result store honours.

    ``get(digest)`` returns the cached ``{"result", "manifest"}`` payload
    or None; ``put(digest, payload)`` stores one (idempotently — the key
    is content-addressed, so concurrent writers of the same digest are
    writing the same bytes); ``evictions`` counts corrupt entries the
    store discarded over its lifetime.  ``describe()`` is the spec string
    :func:`make_store` rebuilds the store from on another host.
    """

    evictions: int = 0

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def put(self, digest: str, payload: Dict[str, Any]) -> None:
        raise NotImplementedError

    def clear(self) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __contains__(self, digest: str) -> bool:
        return self.get(digest) is not None


class CampaignCache(CacheStore):
    """Content-addressed store of run results under a root directory.

    Layout: ``<root>/<digest[:2]>/<digest>.json`` — one JSON document per
    completed run, a ``{"result", "manifest", "checksum"}`` envelope whose
    checksum is the content digest of the result+manifest pair.  Writes are
    durable and atomic (pid-unique tmp file, fsynced, renamed over the final
    path, directory fsynced) so a campaign killed mid-write — or a power cut
    — never leaves a truncated entry behind; corruption that slips past that
    (bit rot, a partial copy) is caught by the checksum on read — the entry
    is evicted with a :class:`CacheCorruptionWarning` and the run recomputed.

    Concurrency: mutations (:meth:`put`, evictions, :meth:`clear`) hold an
    advisory ``fcntl.flock`` on the ``.lock`` sidecar under the root, so
    concurrent campaigns can share one cache directory.  Reads are
    lock-free: atomic rename guarantees a reader sees either the old state
    or a complete entry, and the checksum catches everything else.
    """

    LOCK_NAME = ".lock"

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        #: Corrupt entries evicted by :meth:`get` over this cache's lifetime.
        self.evictions = 0

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def _entries(self) -> Iterator[Path]:
        """Every envelope file, skipping the cluster registry sidecar dir."""
        for entry in self.root.glob("*/*.json"):
            if entry.parent.name == CLUSTER_REGISTRY_DIRNAME:
                continue
            yield entry

    @property
    def lock_path(self) -> Path:
        return self.root / self.LOCK_NAME

    @contextmanager
    def _lock(self) -> Iterator[None]:
        """Advisory exclusive lock over cache mutations (no-op sans fcntl)."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover
                pass
            os.close(fd)

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached ``{"result", "manifest"}`` payload, or None on a miss.

        Any validation failure — unreadable file, broken JSON, missing
        checksum, checksum mismatch — warns, evicts the entry, and reports a
        miss so the caller recomputes.
        """
        path = self._path(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._evict(path, digest, f"unreadable: {exc}")
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            self._evict(path, digest, f"truncated or invalid JSON: {exc}")
            return None
        if (
            not isinstance(payload, dict)
            or "result" not in payload
            or "checksum" not in payload
        ):
            self._evict(path, digest, "malformed envelope")
            return None
        expected = _envelope_checksum(payload["result"], payload.get("manifest"))
        if payload["checksum"] != expected:
            self._evict(path, digest, "checksum mismatch (corrupted content)")
            return None
        return {"result": payload["result"], "manifest": payload.get("manifest")}

    def _evict(self, path: Path, digest: str, reason: str) -> None:
        self.evictions += 1
        warnings.warn(
            f"campaign cache entry {digest[:12]}… {reason}; "
            "evicting and recomputing",
            CacheCorruptionWarning,
            stacklevel=3,
        )
        with self._lock():
            try:
                path.unlink()
            except OSError:
                pass

    def put(self, digest: str, payload: Dict[str, Any]) -> None:
        """Durably store one result envelope (locked, atomic, fsynced).

        Write path: pid-unique hidden tmp file → flush → ``fsync`` the file
        → ``os.replace`` over the final name → ``fsync`` the directory.  A
        crash or power cut at any point leaves either the old state or the
        complete new entry, never a torn one.
        """
        result = payload["result"]
        manifest = payload.get("manifest")
        envelope = {
            "result": result,
            "manifest": manifest,
            "checksum": _envelope_checksum(result, manifest),
        }
        path = self._path(digest)
        with self._lock():
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / f".{digest}.{os.getpid()}.tmp"
            try:
                with tmp.open("w", encoding="utf-8") as handle:
                    json.dump(envelope, handle, sort_keys=True,
                              separators=(",", ":"))
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            except BaseException:
                try:
                    tmp.unlink()
                except OSError:
                    pass
                raise
            _fsync_dir(path.parent)

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        with self._lock():
            for entry in list(self._entries()):
                entry.unlink()
                removed += 1
        return removed

    def describe(self) -> str:
        return str(self.root.resolve())


class HttpCacheStore(CacheStore):
    """The campaign envelope protocol over HTTP (object-store shaped).

    Entries live at ``<base>/<digest[:2]>/<digest>.json`` exactly as on
    disk; the body is the full ``{"result", "manifest", "checksum"}``
    envelope, validated on every read just like the directory store.  A
    corrupt body is evicted with a best-effort ``DELETE`` and reported as
    a miss.  Network errors (server down, timeout) are also misses — a
    shard losing its shared cache recomputes, it never fails.
    """

    def __init__(self, base_url: str, timeout: float = 5.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.evictions = 0
        #: Network failures swallowed (observability, not control flow).
        self.errors = 0

    def _url(self, digest: str) -> str:
        return f"{self.base_url}/{digest[:2]}/{digest}.json"

    def _request(self, method: str, digest: str,
                 body: Optional[bytes] = None) -> Optional[bytes]:
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            self._url(digest), data=body, method=method
        )
        if body is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            exc.close()
            if exc.code != 404:
                self.errors += 1
            return None
        except (urllib.error.URLError, OSError):
            self.errors += 1
            return None

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        body = self._request("GET", digest)
        if body is None:
            return None
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._evict(digest, "undecodable envelope")
            return None
        if (
            not isinstance(payload, dict)
            or "result" not in payload
            or "checksum" not in payload
        ):
            self._evict(digest, "malformed envelope")
            return None
        expected = _envelope_checksum(payload["result"], payload.get("manifest"))
        if payload["checksum"] != expected:
            self._evict(digest, "checksum mismatch (corrupted content)")
            return None
        return {"result": payload["result"], "manifest": payload.get("manifest")}

    def _evict(self, digest: str, reason: str) -> None:
        self.evictions += 1
        warnings.warn(
            f"remote cache entry {digest[:12]}… {reason}; "
            "evicting and recomputing",
            CacheCorruptionWarning,
            stacklevel=3,
        )
        self._request("DELETE", digest)

    def put(self, digest: str, payload: Dict[str, Any]) -> None:
        result = payload["result"]
        manifest = payload.get("manifest")
        envelope = {
            "result": result,
            "manifest": manifest,
            "checksum": _envelope_checksum(result, manifest),
        }
        body = json.dumps(envelope, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        self._request("PUT", digest, body=body)

    def clear(self) -> int:
        import urllib.error
        import urllib.request

        request = urllib.request.Request(self.base_url + "/", method="DELETE")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return int(json.loads(resp.read().decode("utf-8"))["removed"])
        except (urllib.error.URLError, OSError, ValueError, KeyError):
            self.errors += 1
            return 0

    def describe(self) -> str:
        return self.base_url


class CacheServer:
    """Serve a local :class:`CampaignCache` directory over HTTP.

    Protocol (mirrors the on-disk layout, so an object store or a static
    file server behind the same paths works too):

    * ``GET /<aa>/<digest>.json`` — the raw envelope bytes, 404 on a miss;
    * ``PUT /<aa>/<digest>.json`` — store one envelope (validated: bad
      JSON or a checksum mismatch is a 400, the write never happens);
    * ``DELETE /<aa>/<digest>.json`` — drop one entry (evictions);
    * ``DELETE /`` — clear the store; body reports ``{"removed": n}``.

    Thread-per-request via ``ThreadingHTTPServer``; the underlying
    :class:`CampaignCache` serialises writers with its ``flock``.
    """

    def __init__(self, root: PathLike, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        cache = CampaignCache(root)

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # tests/CI do not want per-request stderr chatter

            def _reply(self, code: int, body: bytes = b"") -> None:
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                if body:
                    self.wfile.write(body)

            def _digest(self) -> Optional[str]:
                parts = self.path.strip("/").split("/")
                if len(parts) != 2 or not parts[1].endswith(".json"):
                    return None
                digest = parts[1][: -len(".json")]
                if parts[0] != digest[:2]:
                    return None
                return digest

            def do_GET(self) -> None:
                digest = self._digest()
                if digest is None:
                    self._reply(404)
                    return
                path = cache._path(digest)
                try:
                    body = path.read_bytes()
                except OSError:
                    self._reply(404)
                    return
                self._reply(200, body)

            def do_PUT(self) -> None:
                digest = self._digest()
                if digest is None:
                    self._reply(404)
                    return
                length = int(self.headers.get("Content-Length", 0))
                body = self.rfile.read(length)
                try:
                    envelope = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    self._reply(400)
                    return
                if (
                    not isinstance(envelope, dict)
                    or "result" not in envelope
                    or envelope.get("checksum")
                    != _envelope_checksum(envelope["result"],
                                          envelope.get("manifest"))
                ):
                    self._reply(400)
                    return
                cache.put(digest, {"result": envelope["result"],
                                   "manifest": envelope.get("manifest")})
                self._reply(200)

            def do_DELETE(self) -> None:
                if self.path.strip("/") == "":
                    removed = cache.clear()
                    self._reply(200, json.dumps({"removed": removed})
                                .encode("utf-8"))
                    return
                digest = self._digest()
                if digest is None:
                    self._reply(404)
                    return
                try:
                    cache._path(digest).unlink()
                except OSError:
                    self._reply(404)
                    return
                self._reply(200)

        self.cache = cache
        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread: Optional[Any] = None

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "CacheServer":
        import threading

        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CacheServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def make_store(spec: Union[str, Path, CacheStore, None]) -> Optional[CacheStore]:
    """Build a :class:`CacheStore` from its spec string.

    ``http://`` / ``https://`` URLs become an :class:`HttpCacheStore`;
    anything else is a local directory path (:class:`CampaignCache`).  An
    existing store instance passes through; None stays None.  The spec
    round-trips through :meth:`CacheStore.describe`, which is how the TCP
    transport hands the coordinator's store to remote worker agents.
    """
    if spec is None or isinstance(spec, CacheStore):
        return spec
    text = str(spec)
    if text.startswith("http://") or text.startswith("https://"):
        return HttpCacheStore(text)
    return CampaignCache(text)


__all__ = [
    "CLUSTER_REGISTRY_DIRNAME",
    "CacheCorruptionWarning",
    "CacheServer",
    "CacheStore",
    "CampaignCache",
    "HttpCacheStore",
    "make_store",
]
