"""repro — a from-scratch reproduction of *TCP Muzha* (router-assisted TCP
congestion control over wireless ad hoc networks, ICDCS 2007).

The package ships the complete substrate the paper ran on (discrete-event
kernel, 802.11 DCF MAC over a collision-accurate wireless channel, AODV,
packet-granularity TCP variants) plus the paper's contribution (the DRAI
router feedback and the TCP Muzha sender) and an experiment harness that
regenerates every table and figure of the evaluation.

Quickstart::

    from repro.experiments import run_chain, ScenarioConfig

    result = run_chain(4, ["muzha"], config=ScenarioConfig(sim_time=10.0))
    print(result.flows[0].goodput_kbps)
"""

from . import core, experiments, mac, net, obs, phy, routing, sim, stats, topology, traffic, transport

__version__ = "1.0.0"

__all__ = [
    "core",
    "experiments",
    "mac",
    "obs",
    "net",
    "phy",
    "routing",
    "sim",
    "stats",
    "topology",
    "traffic",
    "transport",
    "__version__",
]
