"""Static (precomputed shortest-path) routing.

The paper's topologies are static, so the steady-state routes AODV finds are
exactly the BFS shortest paths.  Static routing lets experiments isolate
transport behaviour from discovery transients; the scenario builders support
both (``routing="static"`` / ``routing="aodv"``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional

from ..net.node import Node
from ..net.packet import Packet
from .base import RoutingProtocol


class StaticRouting(RoutingProtocol):
    """Routes from a fixed table ``dst -> next_hop``."""

    control_protocol = "static-routing"  # never actually sent

    def __init__(self, routes: Optional[Dict[int, int]] = None) -> None:
        super().__init__()
        self.routes: Dict[int, int] = dict(routes or {})

    def next_hop(self, dst: int) -> Optional[int]:
        return self.routes.get(dst)

    def add_route(self, dst: int, next_hop: int) -> None:
        self.routes[dst] = next_hop


def neighbor_graph(nodes: Iterable[Node], channel) -> Dict[int, list]:
    """Adjacency (by node id) implied by the channel's decode ranges."""
    by_radio = {node.radio: node.node_id for node in nodes}
    graph: Dict[int, list] = {}
    for node in by_radio.values():
        graph[node] = []
    for radio, node_id in by_radio.items():
        graph[node_id] = [
            by_radio[peer] for peer in channel.neighbors_of(radio) if peer in by_radio
        ]
    return graph


def compute_static_routes(nodes: Iterable[Node], channel) -> Dict[int, Dict[int, int]]:
    """All-pairs next-hop tables via BFS on the connectivity graph.

    Returns ``{src_id: {dst_id: next_hop_id}}``.  Unreachable destinations
    are simply absent.
    """
    node_list = list(nodes)
    graph = neighbor_graph(node_list, channel)
    tables: Dict[int, Dict[int, int]] = {}
    for src in graph:
        # BFS from src recording each node's parent.
        parent: Dict[int, int] = {src: src}
        order = deque([src])
        while order:
            current = order.popleft()
            for neighbor in graph[current]:
                if neighbor not in parent:
                    parent[neighbor] = current
                    order.append(neighbor)
        table: Dict[int, int] = {}
        for dst in parent:
            if dst == src:
                continue
            # Walk back from dst to the hop adjacent to src.
            hop = dst
            while parent[hop] != src:
                hop = parent[hop]
            table[dst] = hop
        tables[src] = table
    return tables


def install_static_routing(nodes: Iterable[Node], channel) -> None:
    """Create and attach a :class:`StaticRouting` on every node."""
    node_list = list(nodes)
    tables = compute_static_routes(node_list, channel)
    for node in node_list:
        routing = StaticRouting(tables.get(node.node_id, {}))
        routing.attach(node)
