"""Routing protocol interface shared by static routing and AODV."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ..net.node import Node
from ..net.packet import Packet


@dataclass
class RoutingCounters:
    """Counters every routing protocol maintains."""

    no_route_drops: int = 0
    link_failures: int = 0
    control_tx: int = 0
    control_rx: int = 0


class RoutingProtocol(ABC):
    """Base class for per-node routing protocol instances."""

    #: Packets whose ``protocol`` equals this string are handed to
    #: :meth:`receive_control` instead of being forwarded.
    control_protocol: str = "routing"

    def __init__(self) -> None:
        self.node: Optional[Node] = None
        self.counters = RoutingCounters()

    def attach(self, node: Node) -> None:
        """Bind this protocol instance to its node."""
        self.node = node
        node.set_routing(self)

    def start(self) -> None:
        """Hook called once when the simulation scenario starts."""

    # -- required behaviour -------------------------------------------------

    @abstractmethod
    def next_hop(self, dst: int) -> Optional[int]:
        """MAC address of the next hop toward ``dst``, or None if unknown."""

    # -- optional behaviour --------------------------------------------------

    def on_no_route(self, packet: Packet) -> None:
        """Called when a packet cannot be routed; default: count and drop."""
        self.counters.no_route_drops += 1

    def on_link_failure(self, next_hop: int, packet: Packet) -> None:
        """Called when the MAC exhausted retries toward ``next_hop``."""
        self.counters.link_failures += 1

    def on_link_ok(self, next_hop: int) -> None:
        """Called when a unicast to ``next_hop`` was MAC-acknowledged."""

    def receive_control(self, packet: Packet, from_addr: int) -> None:
        """Called with control packets of :attr:`control_protocol`."""
        self.counters.control_rx += 1

    def on_data_packet(self, packet: Packet, from_addr: int) -> None:
        """Called for every delivered/forwarded data packet (route refresh)."""

    def on_node_down(self) -> None:
        """The host node crashed: cancel timers, drop in-flight state.

        Default is a no-op (static routing keeps its precomputed tables —
        the dead node simply stops forwarding); on-demand protocols override
        this to stop discovery timers so no stale event fires post-mortem.
        """

    def on_node_up(self) -> None:
        """The host node restarted; state should look like a cold boot."""
