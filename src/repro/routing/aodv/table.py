"""The AODV routing table with sequence-numbered, expiring entries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class RouteEntry:
    """One destination's route state."""

    dst: int
    next_hop: int
    hop_count: int
    seq: int
    expiry: float
    valid: bool = True

    def alive(self, now: float) -> bool:
        return self.valid and now < self.expiry


class RoutingTable:
    """Destination-keyed table implementing AODV's freshness rules."""

    def __init__(self) -> None:
        self._entries: Dict[int, RouteEntry] = {}

    def get(self, dst: int) -> Optional[RouteEntry]:
        """Raw entry (may be invalid/expired), or None."""
        return self._entries.get(dst)

    def lookup(self, dst: int, now: float) -> Optional[RouteEntry]:
        """Entry usable for forwarding right now, or None."""
        entry = self._entries.get(dst)
        if entry is not None and entry.alive(now):
            return entry
        return None

    def update(
        self,
        dst: int,
        next_hop: int,
        hop_count: int,
        seq: int,
        expiry: float,
    ) -> bool:
        """Install the route if it is fresher (higher seq) or as fresh but
        shorter, or if no usable route exists.  Returns True if installed."""
        entry = self._entries.get(dst)
        if entry is None or not entry.valid:
            accept = True
        elif seq > entry.seq:
            accept = True
        elif seq == entry.seq and hop_count < entry.hop_count:
            accept = True
        else:
            accept = False
        if accept:
            self._entries[dst] = RouteEntry(dst, next_hop, hop_count, seq, expiry)
        return accept

    def refresh(self, dst: int, expiry: float) -> None:
        """Extend an active route's lifetime (traffic keeps routes alive)."""
        entry = self._entries.get(dst)
        if entry is not None and entry.valid and expiry > entry.expiry:
            entry.expiry = expiry

    def invalidate_via(self, next_hop: int) -> List[RouteEntry]:
        """Invalidate every valid route whose next hop is ``next_hop``.

        Per RFC 3561 the destination sequence number is incremented so the
        broken route cannot be re-installed stale.  Returns the entries hit.
        """
        broken: List[RouteEntry] = []
        for entry in self._entries.values():
            if entry.valid and entry.next_hop == next_hop:
                entry.valid = False
                entry.seq += 1
                broken.append(entry)
        return broken

    def invalidate(self, dst: int) -> Optional[RouteEntry]:
        """Invalidate the route to ``dst`` (e.g. from a received RERR)."""
        entry = self._entries.get(dst)
        if entry is not None and entry.valid:
            entry.valid = False
            entry.seq += 1
            return entry
        return None

    def clear(self) -> None:
        """Forget every route (node reboot: the table does not survive)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def valid_destinations(self, now: float) -> List[int]:
        return [dst for dst, e in self._entries.items() if e.alive(now)]
