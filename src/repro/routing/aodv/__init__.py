"""AODV on-demand routing (substrate S5)."""

from . import constants
from .messages import Rerr, Rrep, Rreq
from .protocol import AodvCounters, AodvRouting, install_aodv_routing
from .table import RouteEntry, RoutingTable

__all__ = [
    "AodvCounters",
    "AodvRouting",
    "Rerr",
    "Rrep",
    "Rreq",
    "RouteEntry",
    "RoutingTable",
    "constants",
    "install_aodv_routing",
]
