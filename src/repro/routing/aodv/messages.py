"""AODV control messages (RREQ / RREP / RERR).

These are per-event types on the flood path — a single route discovery
allocates one ``Rreq`` per node per rebroadcast — so, like the packet and
frame types, they are ``__slots__`` classes with ``__new__``-based
``hopped()`` fast paths instead of dataclasses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class Rreq:
    """Route request, flooded toward the destination."""

    __slots__ = (
        "orig", "orig_seq", "rreq_id", "dst", "dst_seq",
        "unknown_dst_seq", "hop_count",
    )

    def __init__(
        self,
        orig: int,
        orig_seq: int,
        rreq_id: int,
        dst: int,
        dst_seq: int,
        unknown_dst_seq: bool,
        hop_count: int = 0,
    ) -> None:
        self.orig = orig
        self.orig_seq = orig_seq
        self.rreq_id = rreq_id
        self.dst = dst
        self.dst_seq = dst_seq
        self.unknown_dst_seq = unknown_dst_seq
        self.hop_count = hop_count

    def __repr__(self) -> str:
        return (
            f"Rreq(orig={self.orig}, orig_seq={self.orig_seq}, "
            f"rreq_id={self.rreq_id}, dst={self.dst}, dst_seq={self.dst_seq}, "
            f"unknown_dst_seq={self.unknown_dst_seq}, hop_count={self.hop_count})"
        )

    def hopped(self) -> "Rreq":
        """Copy with the hop counter incremented (for rebroadcast)."""
        clone = Rreq.__new__(Rreq)
        clone.orig = self.orig
        clone.orig_seq = self.orig_seq
        clone.rreq_id = self.rreq_id
        clone.dst = self.dst
        clone.dst_seq = self.dst_seq
        clone.unknown_dst_seq = self.unknown_dst_seq
        clone.hop_count = self.hop_count + 1
        return clone


class Rrep:
    """Route reply, unicast back along the reverse path."""

    __slots__ = ("orig", "dst", "dst_seq", "lifetime", "hop_count")

    def __init__(
        self,
        orig: int,
        dst: int,
        dst_seq: int,
        lifetime: float,
        hop_count: int = 0,
    ) -> None:
        self.orig = orig
        self.dst = dst
        self.dst_seq = dst_seq
        self.lifetime = lifetime
        self.hop_count = hop_count

    def __repr__(self) -> str:
        return (
            f"Rrep(orig={self.orig}, dst={self.dst}, dst_seq={self.dst_seq}, "
            f"lifetime={self.lifetime}, hop_count={self.hop_count})"
        )

    def hopped(self) -> "Rrep":
        clone = Rrep.__new__(Rrep)
        clone.orig = self.orig
        clone.dst = self.dst
        clone.dst_seq = self.dst_seq
        clone.lifetime = self.lifetime
        clone.hop_count = self.hop_count + 1
        return clone


class Rerr:
    """Route error listing now-unreachable destinations."""

    __slots__ = ("unreachable",)

    def __init__(self, unreachable: Optional[List[Tuple[int, int]]] = None) -> None:
        self.unreachable = unreachable if unreachable is not None else []

    def __repr__(self) -> str:
        return f"Rerr(unreachable={self.unreachable})"
