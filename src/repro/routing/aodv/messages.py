"""AODV control messages (RREQ / RREP / RERR)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class Rreq:
    """Route request, flooded toward the destination."""

    orig: int
    orig_seq: int
    rreq_id: int
    dst: int
    dst_seq: int
    unknown_dst_seq: bool
    hop_count: int = 0

    def hopped(self) -> "Rreq":
        """Copy with the hop counter incremented (for rebroadcast)."""
        return Rreq(
            orig=self.orig,
            orig_seq=self.orig_seq,
            rreq_id=self.rreq_id,
            dst=self.dst,
            dst_seq=self.dst_seq,
            unknown_dst_seq=self.unknown_dst_seq,
            hop_count=self.hop_count + 1,
        )


@dataclass
class Rrep:
    """Route reply, unicast back along the reverse path."""

    orig: int
    dst: int
    dst_seq: int
    lifetime: float
    hop_count: int = 0

    def hopped(self) -> "Rrep":
        return Rrep(
            orig=self.orig,
            dst=self.dst,
            dst_seq=self.dst_seq,
            lifetime=self.lifetime,
            hop_count=self.hop_count + 1,
        )


@dataclass
class Rerr:
    """Route error listing now-unreachable destinations."""

    unreachable: List[Tuple[int, int]] = field(default_factory=list)
