"""AODV protocol constants (RFC 3561 names, NS2-compatible values)."""

from __future__ import annotations

#: Protocol tag carried by AODV control packets.
AODV_PROTOCOL = "aodv"

#: Expected per-hop traversal time (RFC 3561 NODE_TRAVERSAL_TIME).  The RFC
#: default of 40 ms assumes slow, loaded links; our RREQs occupy ~1 ms of
#: air per hop, so 10 ms is a comfortable bound and keeps the discovery
#: retry timer responsive (a lost RREQ broadcast otherwise stalls TCP for
#: multiple seconds).
NODE_TRAVERSAL_TIME = 0.01

#: Maximum network diameter in hops.
NET_DIAMETER = 35

#: Upper bound on end-to-end control-packet travel time.
NET_TRAVERSAL_TIME = 2 * NODE_TRAVERSAL_TIME * NET_DIAMETER

#: How long to wait for an RREP before retrying an RREQ (doubled on each
#: retry, per RFC 3561 binary exponential backoff).
PATH_DISCOVERY_TIME = NET_TRAVERSAL_TIME

#: How many times an RREQ is retried before the destination is declared
#: unreachable and buffered packets are dropped.
RREQ_RETRIES = 3

#: RREQ rebroadcasts are delayed by a uniform random jitter in [0, this) so
#: a flood does not synchronise its own collisions (RFC 3561 §6.3 note).
RREQ_JITTER = 0.01

#: A MAC retry exhaustion only *confirms* a broken link if another one to
#: the same next hop happened within this window.  A single exhaustion on a
#: congested static chain is almost always contention, not a broken link —
#: tearing the route down for it turns transient congestion into a
#: multi-hundred-millisecond outage (the classic TCP-over-MANET
#: misinterpretation problem; cf. ATCP, TCP-ELFN literature).
LINK_FAILURE_CONFIRM_WINDOW = 1.0

#: Lifetime of an active route without traffic.
ACTIVE_ROUTE_TIMEOUT = 10.0

#: How long (orig, rreq_id) pairs stay in the duplicate-RREQ cache.
RREQ_SEEN_LIFETIME = PATH_DISCOVERY_TIME

#: Maximum packets buffered per destination while discovery runs.
MAX_BUFFERED_PER_DST = 64

#: Control message sizes (bytes, excluding the IP header).
RREQ_BYTES = 24
RREP_BYTES = 20
RERR_BYTES = 12
