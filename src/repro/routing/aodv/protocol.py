"""AODV: Ad hoc On-demand Distance Vector routing (RFC 3561, simplified
exactly as the common NS2 configuration is):

* on-demand RREQ flooding with duplicate suppression and retry/backoff;
* destination-only RREPs unicast along the reverse path;
* link-failure detection from MAC retry exhaustion (no HELLO beacons,
  matching NS2's link-layer detection mode);
* RERR dissemination and sequence-number-based loop freedom;
* packet buffering per destination while discovery is in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...mac.frames import BROADCAST
from ...net.packet import IP_HEADER_BYTES, Packet
from ...sim.simulator import Simulator
from ...sim.timer import Timer
from ..base import RoutingProtocol
from . import constants as C
from .messages import Rerr, Rrep, Rreq
from .table import RoutingTable


@dataclass
class PendingDiscovery:
    """State for one in-flight route discovery."""

    dst: int
    retries: int = 0
    buffered: List[Packet] = field(default_factory=list)
    timer: Optional[Timer] = None


@dataclass
class AodvCounters:
    """AODV-specific counters (extends the base routing counters)."""

    rreq_tx: int = 0
    rreq_rx: int = 0
    rrep_tx: int = 0
    rrep_rx: int = 0
    rerr_tx: int = 0
    rerr_rx: int = 0
    discoveries: int = 0
    discovery_failures: int = 0
    buffered_drops: int = 0


class AodvRouting(RoutingProtocol):
    """Per-node AODV instance."""

    control_protocol = C.AODV_PROTOCOL

    def __init__(self, sim: Simulator) -> None:
        super().__init__()
        self.sim = sim
        self.table = RoutingTable()
        self.seq_no = 0
        self.rreq_id = 0
        self.aodv = AodvCounters()
        self._pending: Dict[int, PendingDiscovery] = {}
        self._rreq_seen: Dict[Tuple[int, int], float] = {}
        self._rerr_sent: Dict[Tuple[int, int], float] = {}
        #: next_hop -> time of the most recent unconfirmed MAC failure.
        self._suspect_links: Dict[int, float] = {}

    # -- forwarding interface ----------------------------------------------------

    def next_hop(self, dst: int) -> Optional[int]:
        entry = self.table.lookup(dst, self.sim.now)
        if entry is None:
            return None
        self.table.refresh(dst, self.sim.now + C.ACTIVE_ROUTE_TIMEOUT)
        return entry.next_hop

    def on_no_route(self, packet: Packet) -> None:
        pending = self._pending.get(packet.dst)
        if pending is None:
            pending = PendingDiscovery(packet.dst)
            self._pending[packet.dst] = pending
            self._send_rreq(pending)
        if len(pending.buffered) >= C.MAX_BUFFERED_PER_DST:
            self.aodv.buffered_drops += 1
            self.counters.no_route_drops += 1
            return
        pending.buffered.append(packet)

    def on_data_packet(self, packet: Packet, from_addr: int) -> None:
        # Traffic keeps routes alive in both directions, per RFC 3561 §6.2.
        lifetime = self.sim.now + C.ACTIVE_ROUTE_TIMEOUT
        self.table.refresh(packet.src, lifetime)
        self.table.refresh(packet.dst, lifetime)
        self.table.refresh(from_addr, lifetime)

    # -- discovery ----------------------------------------------------------------

    def _send_rreq(self, pending: PendingDiscovery) -> None:
        assert self.node is not None
        self.seq_no += 1
        self.rreq_id += 1
        self.aodv.discoveries += 1
        self.aodv.rreq_tx += 1
        self.counters.control_tx += 1
        known = self.table.get(pending.dst)
        rreq = Rreq(
            orig=self.node.node_id,
            orig_seq=self.seq_no,
            rreq_id=self.rreq_id,
            dst=pending.dst,
            dst_seq=known.seq if known is not None else 0,
            unknown_dst_seq=known is None,
        )
        self._rreq_seen[(rreq.orig, rreq.rreq_id)] = (
            self.sim.now + C.RREQ_SEEN_LIFETIME
        )
        # Gate before building the field dict (sim.trace discipline).
        if self.sim.trace.active and self.sim.trace.wants("aodv.rreq"):
            self.sim.emit(
                f"aodv.{self.node.node_id}", "aodv.rreq",
                node=self.node.node_id, dst=pending.dst,
                rreq_id=rreq.rreq_id, retry=pending.retries,
            )
        self.node.send_control(self._control_packet(rreq, C.RREQ_BYTES), BROADCAST)
        if pending.timer is None:
            pending.timer = Timer(
                self.sim, lambda: self._discovery_timeout(pending.dst), name="aodv.rreq"
            )
        pending.timer.start(C.PATH_DISCOVERY_TIME * (2 ** pending.retries))

    def _discovery_timeout(self, dst: int) -> None:
        pending = self._pending.get(dst)
        if pending is None:
            return
        if pending.retries < C.RREQ_RETRIES:
            pending.retries += 1
            self._send_rreq(pending)
            return
        # Destination unreachable: drop everything buffered for it.
        self.aodv.discovery_failures += 1
        self.aodv.buffered_drops += len(pending.buffered)
        self.counters.no_route_drops += len(pending.buffered)
        if self.sim.trace.active and self.sim.trace.wants("aodv.route_failure"):
            self.sim.emit(
                f"aodv.{self.node.node_id}", "aodv.route_failure",
                node=self.node.node_id, dst=dst,
                dropped=len(pending.buffered),
            )
        self._clear_pending(dst)

    def _clear_pending(self, dst: int) -> None:
        pending = self._pending.pop(dst, None)
        if pending is not None and pending.timer is not None:
            pending.timer.stop()

    def _flush_pending(self, dst: int) -> None:
        """A route appeared: release buffered packets for ``dst``."""
        assert self.node is not None
        pending = self._pending.pop(dst, None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.stop()
        for packet in pending.buffered:
            self.node.dispatch(packet)

    # -- power state (fault injection) ----------------------------------------------

    def on_node_down(self) -> None:
        """Crash: stop every pending-discovery timer and wipe routing state.

        The timers matter most — a discovery timeout firing on a dead node
        would rebroadcast RREQs from beyond the grave.  Buffered packets die
        with the node (counted as drops, like the IFQ flush).
        """
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.stop()
            self.aodv.buffered_drops += len(pending.buffered)
            self.counters.no_route_drops += len(pending.buffered)
        self._pending.clear()
        self.table.clear()
        self._rreq_seen.clear()
        self._rerr_sent.clear()
        self._suspect_links.clear()

    def on_node_up(self) -> None:
        """Reboot with a cold table but a bumped sequence number.

        RFC 3561 §6.1: after a reboot a node must not reuse old sequence
        numbers, or stale pre-crash RREPs held by neighbours could beat its
        fresh ones.  We keep ``seq_no``/``rreq_id`` monotonic and bump once.
        """
        self.seq_no += 1

    # -- control-plane receive ------------------------------------------------------

    def receive_control(self, packet: Packet, from_addr: int) -> None:
        self.counters.control_rx += 1
        message = packet.payload
        if isinstance(message, Rreq):
            self._receive_rreq(message, packet, from_addr)
        elif isinstance(message, Rrep):
            self._receive_rrep(message, from_addr)
        elif isinstance(message, Rerr):
            self._receive_rerr(message, from_addr)

    def _receive_rreq(self, rreq: Rreq, packet: Packet, from_addr: int) -> None:
        assert self.node is not None
        self.aodv.rreq_rx += 1
        key = (rreq.orig, rreq.rreq_id)
        if self._rreq_seen.get(key, 0.0) > self.sim.now:
            return
        self._rreq_seen[key] = self.sim.now + C.RREQ_SEEN_LIFETIME

        # Reverse route toward the originator.
        hops_to_orig = rreq.hop_count + 1
        lifetime = self.sim.now + C.ACTIVE_ROUTE_TIMEOUT
        self.table.update(rreq.orig, from_addr, hops_to_orig, rreq.orig_seq, lifetime)
        self._flush_pending(rreq.orig)

        if rreq.dst == self.node.node_id:
            # RFC 3561 §6.6.1: the destination bumps its own sequence number
            # to at least the requested one before replying.
            self.seq_no = max(self.seq_no + 1, rreq.dst_seq)
            rrep = Rrep(
                orig=rreq.orig,
                dst=self.node.node_id,
                dst_seq=self.seq_no,
                lifetime=C.ACTIVE_ROUTE_TIMEOUT,
            )
            self._send_rrep(rrep, from_addr)
            return

        if packet.ttl <= 1:
            return
        forwarded = packet.aged_copy()
        forwarded.payload = rreq.hopped()
        self.aodv.rreq_tx += 1
        self.counters.control_tx += 1
        # Jitter the rebroadcast so neighbouring nodes that all heard the
        # same RREQ do not flood in lockstep and collide.
        jitter = self.sim.stream("aodv.jitter").uniform(0.0, C.RREQ_JITTER)
        self.sim.after(jitter, self.node.send_control, forwarded, BROADCAST)

    def _send_rrep(self, rrep: Rrep, next_hop: int) -> None:
        assert self.node is not None
        self.aodv.rrep_tx += 1
        self.counters.control_tx += 1
        if self.sim.trace.active and self.sim.trace.wants("aodv.rrep"):
            self.sim.emit(
                f"aodv.{self.node.node_id}", "aodv.rrep",
                node=self.node.node_id, orig=rrep.orig, dst=rrep.dst,
                next_hop=next_hop,
            )
        self.node.send_control(self._control_packet(rrep, C.RREP_BYTES), next_hop)

    def _receive_rrep(self, rrep: Rrep, from_addr: int) -> None:
        assert self.node is not None
        self.aodv.rrep_rx += 1
        hops_to_dst = rrep.hop_count + 1
        lifetime = self.sim.now + rrep.lifetime
        self.table.update(rrep.dst, from_addr, hops_to_dst, rrep.dst_seq, lifetime)
        if rrep.orig == self.node.node_id:
            self._flush_pending(rrep.dst)
            return
        reverse = self.table.lookup(rrep.orig, self.sim.now)
        if reverse is None:
            return  # reverse path evaporated; originator will retry
        self._send_rrep(rrep.hopped(), reverse.next_hop)

    # -- failure handling -------------------------------------------------------------

    def on_link_ok(self, next_hop: int) -> None:
        # A delivered frame clears any single-strike suspicion on the link.
        self._suspect_links.pop(next_hop, None)

    def _salvageable(self, packet: Packet) -> bool:
        """Data packets with TTL budget can be re-routed; control packets
        have their own retry logic (RREQ retries) and are never salvaged."""
        return (
            packet.protocol != self.control_protocol
            and packet.dst != self.node.node_id
            and packet.dst != BROADCAST
            and packet.ttl > 1
        )

    def on_link_failure(self, next_hop: int, packet: Packet) -> None:
        assert self.node is not None
        self.counters.link_failures += 1
        now = self.sim.now
        last = self._suspect_links.get(next_hop)
        self._suspect_links[next_hop] = now
        if last is None or now - last > C.LINK_FAILURE_CONFIRM_WINDOW:
            # First strike: treat as transient contention.  Re-dispatch the
            # packet over the (still installed) route and keep the queue.
            if self._salvageable(packet):
                self.node.dispatch(packet)
            return
        del self._suspect_links[next_hop]
        if self.sim.trace.active and self.sim.trace.wants("aodv.link_down"):
            self.sim.emit(
                f"aodv.{self.node.node_id}", "aodv.link_down",
                node=self.node.node_id, next_hop=next_hop,
            )
        broken = self.table.invalidate_via(next_hop)
        # Pull queued packets headed into the broken link and salvage them:
        # they re-enter the discovery buffer and flow again once a route is
        # re-established (dropping them would turn one MAC-level failure
        # into a whole window of TCP losses).
        stranded = self.node.ifq.remove_if(
            lambda entry: entry.next_hop == next_hop
        )
        if broken:
            rerr = Rerr(unreachable=[(e.dst, e.seq) for e in broken])
            self._send_rerr(rerr)
        if self._salvageable(packet):
            self.on_no_route(packet)
        for entry in stranded:
            if self._salvageable(entry.packet):
                self.on_no_route(entry.packet)

    def _send_rerr(self, rerr: Rerr) -> None:
        assert self.node is not None
        self.aodv.rerr_tx += 1
        self.counters.control_tx += 1
        if self.sim.trace.active and self.sim.trace.wants("aodv.rerr"):
            self.sim.emit(
                f"aodv.{self.node.node_id}", "aodv.rerr",
                node=self.node.node_id,
                unreachable=list(rerr.unreachable),
            )
        self.node.send_control(self._control_packet(rerr, C.RERR_BYTES), BROADCAST)

    def _receive_rerr(self, rerr: Rerr, from_addr: int) -> None:
        self.aodv.rerr_rx += 1
        propagated: List[Tuple[int, int]] = []
        for dst, seq in rerr.unreachable:
            entry = self.table.get(dst)
            if entry is not None and entry.valid and entry.next_hop == from_addr:
                self.table.invalidate(dst)
                propagated.append((dst, max(seq, entry.seq)))
        if propagated:
            key_time = self.sim.now
            fresh = [
                item
                for item in propagated
                if self._rerr_sent.get(item, 0.0) <= key_time
            ]
            for item in fresh:
                self._rerr_sent[item] = key_time + 1.0
            if fresh:
                self._send_rerr(Rerr(unreachable=fresh))

    # -- helpers ---------------------------------------------------------------------------

    def _control_packet(self, message: object, body_bytes: int) -> Packet:
        assert self.node is not None
        return Packet(
            src=self.node.node_id,
            dst=BROADCAST,
            protocol=C.AODV_PROTOCOL,
            size_bytes=IP_HEADER_BYTES + body_bytes,
            payload=message,
            ttl=C.NET_DIAMETER,
        )


def install_aodv_routing(nodes, sim: Simulator) -> Dict[int, AodvRouting]:
    """Create and attach an :class:`AodvRouting` on every node."""
    protocols: Dict[int, AodvRouting] = {}
    for node in nodes:
        routing = AodvRouting(sim)
        routing.attach(node)
        protocols[node.node_id] = routing
    return protocols
