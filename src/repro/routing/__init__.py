"""Routing layer: static shortest-path routing and AODV."""

from .aodv import AodvRouting, install_aodv_routing
from .base import RoutingCounters, RoutingProtocol
from .static import (
    StaticRouting,
    compute_static_routes,
    install_static_routing,
    neighbor_graph,
)

__all__ = [
    "AodvRouting",
    "RoutingCounters",
    "RoutingProtocol",
    "StaticRouting",
    "compute_static_routes",
    "install_aodv_routing",
    "install_static_routing",
    "neighbor_graph",
]
