"""Link error models for random (non-congestion) loss.

The paper's central claim for TCP Muzha is that it distinguishes congestion
loss from *random* loss caused by the lossy wireless medium.  These models
inject exactly that kind of loss at frame reception time, independent of any
queueing behaviour.

``UniformBitError`` draws i.i.d. bit errors; ``GilbertElliott`` produces the
bursty errors the paper mentions ("the errors occur in bursts").
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod


class ErrorModel(ABC):
    """Decides whether a frame of ``nbytes`` is corrupted in flight."""

    @abstractmethod
    def frame_corrupted(self, rng: random.Random, nbytes: int, now: float) -> bool:
        """Return True if the frame must be dropped as a random loss."""


class NoError(ErrorModel):
    """A perfect medium (the paper's congestion-only scenarios)."""

    def frame_corrupted(self, rng: random.Random, nbytes: int, now: float) -> bool:
        return False


class UniformBitError(ErrorModel):
    """Independent bit errors at a fixed bit error rate (BER)."""

    def __init__(self, ber: float) -> None:
        if not 0.0 <= ber < 1.0:
            raise ValueError(f"ber must be in [0, 1), got {ber}")
        self.ber = ber

    def frame_corrupted(self, rng: random.Random, nbytes: int, now: float) -> bool:
        if self.ber == 0.0:
            return False
        # P(frame error) = 1 - (1 - ber)^(8 * nbytes), computed in log space
        # to stay accurate for tiny BERs.
        log_ok = 8 * nbytes * math.log1p(-self.ber)
        return rng.random() >= math.exp(log_ok)


class PacketErrorRate(ErrorModel):
    """Drops each frame independently with fixed probability ``per``.

    Useful in tests where an exact loss probability (independent of frame
    size) makes assertions straightforward.
    """

    def __init__(self, per: float) -> None:
        if not 0.0 <= per <= 1.0:
            raise ValueError(f"per must be in [0, 1], got {per}")
        self.per = per

    def frame_corrupted(self, rng: random.Random, nbytes: int, now: float) -> bool:
        return self.per > 0.0 and rng.random() < self.per


class GilbertElliott(ErrorModel):
    """Two-state Markov (Gilbert–Elliott) bursty error model.

    The channel alternates between a GOOD state with low BER and a BAD state
    with high BER.  State dwell times are exponential with the given mean
    durations; the state is re-evaluated lazily from the elapsed time at each
    frame, which is exact for a two-state Markov chain observed at arbitrary
    instants.
    """

    def __init__(
        self,
        ber_good: float = 0.0,
        ber_bad: float = 0.01,
        mean_good: float = 1.0,
        mean_bad: float = 0.05,
    ) -> None:
        if mean_good <= 0 or mean_bad <= 0:
            raise ValueError("state dwell times must be positive")
        self._good = UniformBitError(ber_good)
        self._bad = UniformBitError(ber_bad)
        self.mean_good = mean_good
        self.mean_bad = mean_bad
        self._state_good = True
        self._state_until = 0.0

    def _advance(self, rng: random.Random, now: float) -> None:
        while self._state_until <= now:
            self._state_good = not self._state_good
            mean = self.mean_good if self._state_good else self.mean_bad
            self._state_until += rng.expovariate(1.0 / mean)

    def frame_corrupted(self, rng: random.Random, nbytes: int, now: float) -> bool:
        self._advance(rng, now)
        model = self._good if self._state_good else self._bad
        return model.frame_corrupted(rng, nbytes, now)
