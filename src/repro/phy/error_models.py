"""Link error models for random (non-congestion) loss.

The paper's central claim for TCP Muzha is that it distinguishes congestion
loss from *random* loss caused by the lossy wireless medium.  These models
inject exactly that kind of loss at frame reception time, independent of any
queueing behaviour.

``UniformBitError`` draws i.i.d. bit errors; ``GilbertElliott`` produces the
bursty errors the paper mentions ("the errors occur in bursts").

Hot path: ``frame_corrupted`` runs once per receivable frame departure, which
makes it the single most-called model method in lossy-medium campaigns.  The
fast paths below keep the ``random.Random`` draw *sequence* bit-identical to
the naive formulations — replay determinism (golden traces, campaign
fingerprints, manifest verification) depends on every run consuming the
``phy.error`` stream in exactly the same order — while eliminating the
per-frame transcendental math:

* ``UniformBitError`` memoizes the frame-error probability per distinct
  ``nbytes`` (frame sizes in a run are a handful of constants: RTS/CTS/ACK
  control sizes plus the MSS), so steady state is one ``rng.random()`` and
  one dict hit;
* ``GilbertElliott`` delegates to two memoized ``UniformBitError`` tables
  (its per-state probability caches) and advances its state boundary with
  plain local-variable arithmetic.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Dict, Optional


def _validate_probability(name: str, value: float, upper_inclusive: bool) -> float:
    """Reject NaN, negative and out-of-range rates with a uniform message."""
    # Note the comparison shape: any comparison with NaN is False, so NaN
    # fails the range check too and never reaches the arithmetic below.
    if upper_inclusive:
        ok = 0.0 <= value <= 1.0
        bounds = "[0, 1]"
    else:
        ok = 0.0 <= value < 1.0
        bounds = "[0, 1)"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value}")
    return value


class ErrorModel(ABC):
    """Decides whether a frame of ``nbytes`` is corrupted in flight."""

    @abstractmethod
    def frame_corrupted(self, rng: random.Random, nbytes: int, now: float) -> bool:
        """Return True if the frame must be dropped as a random loss."""


class NoError(ErrorModel):
    """A perfect medium (the paper's congestion-only scenarios)."""

    def frame_corrupted(self, rng: random.Random, nbytes: int, now: float) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoError()"


class UniformBitError(ErrorModel):
    """Independent bit errors at a fixed bit error rate (BER).

    P(frame error) = 1 - (1 - ber)^(8 * nbytes), evaluated in log space so it
    stays accurate for tiny BERs.  ``log1p(-ber)`` is hoisted to construction
    time and the resulting per-``nbytes`` survival probability is memoized,
    so the per-frame cost is one RNG draw plus a dict lookup — with values
    computed by exactly the historical expression, keeping every corruption
    decision (and therefore the RNG draw sequence) bit-identical.
    """

    def __init__(self, ber: float) -> None:
        self.ber = _validate_probability("ber", ber, upper_inclusive=False)
        #: Hoisted ``log1p(-ber)``; per-frame code multiplies by ``8*nbytes``.
        self._log_ok_per_bit = math.log1p(-ber) if ber > 0.0 else 0.0
        #: nbytes -> P(frame survives); a run sees only a handful of frame
        #: sizes (control frames + MSS), so this stays tiny.
        self._p_ok: Dict[int, float] = {}

    def frame_corrupted(self, rng: random.Random, nbytes: int, now: float) -> bool:
        if self.ber == 0.0:
            return False
        p_ok = self._p_ok.get(nbytes)
        if p_ok is None:
            # Exactly the historical grouping: (8 * nbytes) * log1p(-ber).
            p_ok = self._p_ok[nbytes] = math.exp(8 * nbytes * self._log_ok_per_bit)
        return rng.random() >= p_ok

    def __repr__(self) -> str:
        return f"UniformBitError(ber={self.ber!r})"


class PacketErrorRate(ErrorModel):
    """Drops each frame independently with fixed probability ``per``.

    Useful in tests where an exact loss probability (independent of frame
    size) makes assertions straightforward.
    """

    def __init__(self, per: float) -> None:
        self.per = _validate_probability("per", per, upper_inclusive=True)
        # Hoisted zero check: the lossless case must not consume RNG draws.
        self._active = per > 0.0

    def frame_corrupted(self, rng: random.Random, nbytes: int, now: float) -> bool:
        return self._active and rng.random() < self.per

    def __repr__(self) -> str:
        return f"PacketErrorRate(per={self.per!r})"


class GilbertElliott(ErrorModel):
    """Two-state Markov (Gilbert–Elliott) bursty error model.

    The channel alternates between a GOOD state with low BER and a BAD state
    with high BER.  State dwell times are exponential with the given mean
    durations; the state is re-evaluated lazily from the elapsed time at each
    frame, which is exact for a two-state Markov chain observed at arbitrary
    instants.

    The chain starts in the GOOD state, and the first GOOD dwell is drawn
    lazily on first use (first ``frame_corrupted`` call): eagerly seeding
    ``_state_until = 0.0`` used to make the very first advance toggle the
    state before any dwell had elapsed, so a model documented to start GOOD
    actually started BAD at t=0.
    """

    def __init__(
        self,
        ber_good: float = 0.0,
        ber_bad: float = 0.01,
        mean_good: float = 1.0,
        mean_bad: float = 0.05,
    ) -> None:
        # ``mean <= 0`` would be False for NaN, so spell the check as "not
        # positive" to reject NaN dwell times as well.
        if not (mean_good > 0 and mean_bad > 0):
            raise ValueError(
                f"state dwell times must be positive, got "
                f"mean_good={mean_good}, mean_bad={mean_bad}"
            )
        # The states are only meaningful when GOOD is the cleaner one; an
        # inverted pair almost certainly swapped arguments.  (Equality is
        # allowed: ber_good == ber_bad degenerates to a uniform channel.)
        if ber_good > ber_bad:
            raise ValueError(
                f"ber_good ({ber_good}) must not exceed ber_bad ({ber_bad})"
            )
        # Per-state probability tables: memoized UniformBitError instances
        # (they also validate/NaN-check the BERs).
        self._good = UniformBitError(ber_good)
        self._bad = UniformBitError(ber_bad)
        self.mean_good = mean_good
        self.mean_bad = mean_bad
        self._state_good = True
        #: End of the current dwell; None until the initial GOOD dwell is
        #: drawn on first use.
        self._state_until: Optional[float] = None

    @property
    def ber_good(self) -> float:
        return self._good.ber

    @property
    def ber_bad(self) -> float:
        return self._bad.ber

    def _advance(self, rng: random.Random, now: float) -> None:
        until = self._state_until
        if until is None:
            # Initial GOOD dwell, drawn at first observation.
            until = rng.expovariate(1.0 / self.mean_good)
        while until <= now:
            self._state_good = good = not self._state_good
            until += rng.expovariate(
                1.0 / (self.mean_good if good else self.mean_bad)
            )
        self._state_until = until

    def frame_corrupted(self, rng: random.Random, nbytes: int, now: float) -> bool:
        self._advance(rng, now)
        model = self._good if self._state_good else self._bad
        return model.frame_corrupted(rng, nbytes, now)

    def __repr__(self) -> str:
        state = "GOOD" if self._state_good else "BAD"
        until = (
            "unstarted" if self._state_until is None
            else f"{self._state_until:.6f}"
        )
        return (
            f"GilbertElliott(ber_good={self.ber_good!r}, "
            f"ber_bad={self.ber_bad!r}, mean_good={self.mean_good!r}, "
            f"mean_bad={self.mean_bad!r}, state={state}, until={until})"
        )
