"""Vectorized PHY batch lane: lane selection + per-source fan-out kernels.

The channel's per-frame hot path fans one transmission out to every
carrier-sense neighbour: k arrival timestamps, k signal-end timestamps and
2k scheduler insertions per frame.  This module supplies the *batch lane*
for that work:

* :func:`resolve_lane` picks the execution lane (``auto``/``batch``/
  ``scalar``) at channel construction time, falling back to the scalar path
  when numpy is unavailable and honouring the ``REPRO_PHY_LANE`` environment
  override;
* :class:`BatchFanout` holds one source radio's fan-out as parallel arrays —
  propagation delays as a float64 vector, bound receive callbacks, the
  receivable mask and rx powers as plain per-neighbour tuples — and computes
  all of a frame's timestamps in one shot.

Determinism contract (carried from PR 2): event-order traces, figure CSVs
and campaign fingerprints must stay **byte-identical** across lanes.  The
timestamp kernel therefore reproduces the scalar code's float grouping
exactly — ``now + delay``, ``(now + delay) + duration`` and
``now + (delay + duration)`` — as elementwise float64 operations.  IEEE-754
double addition is what both CPython floats and numpy float64 execute, and
it is commutative and deterministic per element, so the batch results are
bit-equal to the scalar ones; ``ndarray.tolist()`` converts back to the very
same Python floats.  Lane choice can change *speed only*, never a single
event timestamp, sequence number or RNG draw.

Small fan-outs sidestep numpy: four kernel launches plus three ``tolist()``
conversions cost a couple of microseconds regardless of width, which a
handful of float additions undercuts.  Below :data:`NUMPY_MIN_FANOUT`
neighbours the same grouping is computed in a plain loop — still one
bulk-scheduled batch per frame, still bit-identical.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple

try:  # gated import: the scalar lane must work on a numpy-less interpreter
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: Whether the batch lane is available in this interpreter.
HAVE_NUMPY = _np is not None

#: Valid ``phy_lane`` settings.
LANES = ("auto", "batch", "scalar")

#: Environment override consulted when the configured lane is ``auto`` —
#: lets CI (and bisection) force a lane fleet-wide without touching configs,
#: and without perturbing config digests (lanes are result-invariant).
ENV_VAR = "REPRO_PHY_LANE"

#: Fan-out width below which the batch lane computes timestamps in a plain
#: Python loop instead of numpy: measured on the 8-radio chain bench, the
#: fixed cost of 4 ufunc launches + 3 tolist() conversions (~2-3 us) only
#: amortizes once a frame reaches this many carrier-sense neighbours.
NUMPY_MIN_FANOUT = 16


def resolve_lane(requested: Optional[str] = None) -> str:
    """Resolve a requested lane to the concrete ``batch``/``scalar`` lane.

    ``auto`` (or None) consults the ``REPRO_PHY_LANE`` environment variable,
    then availability: numpy present selects ``batch``, otherwise
    ``scalar``.  Explicitly requesting ``batch`` without numpy raises — a
    config that *names* the vector lane should fail loudly rather than
    silently run 'slower but identical'.
    """
    lane = requested if requested is not None else "auto"
    if lane not in LANES:
        raise ValueError(f"unknown phy_lane {lane!r}; expected one of {LANES}")
    if lane == "auto":
        env = os.environ.get(ENV_VAR)
        if env:
            if env not in LANES:
                raise ValueError(
                    f"bad {ENV_VAR}={env!r}; expected one of {LANES}"
                )
            lane = env
    if lane == "auto":
        lane = "batch" if HAVE_NUMPY else "scalar"
    if lane == "batch" and not HAVE_NUMPY:
        raise ValueError(
            "phy_lane='batch' requires numpy (pip install 'repro[fast]'); "
            "use 'auto' to fall back to the scalar lane automatically"
        )
    return lane


#: One precomputed scalar fan-out entry, as built by the channel:
#: (signal_start, signal_end, receivable, prop_delay, rx_power).
_FanoutEntry = Tuple[
    Callable[..., None], Callable[..., None], bool, float, float
]


class BatchFanout:
    """One source radio's fan-out as parallel arrays + a timestamp kernel.

    ``neighbors`` keeps the per-neighbour invariants the per-frame loop
    needs — ``(signal_start, signal_end, receivable, rx_power)`` in exactly
    the scalar fan-out's iteration order (sequence numbers are assigned in
    fan-out order; reordering would reorder equal-timestamp events).  The
    propagation delays live separately as the vector input of
    :meth:`timestamps`.
    """

    __slots__ = (
        "neighbors", "delays", "width", "use_numpy",
        "numpy_calls", "loop_calls",
        "_d", "_starts", "_ends", "_sums", "_departs",
    )

    def __init__(self, entries: Sequence[_FanoutEntry]) -> None:
        self.neighbors: List[Tuple[Callable, Callable, bool, float]] = [
            (sig_start, sig_end, receivable, power)
            for sig_start, sig_end, receivable, _delay, power in entries
        ]
        self.delays: List[float] = [entry[3] for entry in entries]
        # The batch lane inserts its events without per-item clock checks
        # (EventScheduler.bulk_heap_insert); that is sound only because every
        # fan-out timestamp is ``now`` plus non-negative terms.  Validate the
        # delay half of that guarantee once, here.
        if any(delay < 0 for delay in self.delays):
            raise ValueError("fan-out propagation delays must be >= 0")
        self.width = width = len(entries)
        self.use_numpy = HAVE_NUMPY and width >= NUMPY_MIN_FANOUT
        #: Kernel-selection counters (frames computed per sub-lane); one
        #: int add per frame, harvested post-run by
        #: :meth:`repro.phy.channel.WirelessChannel.lane_counters`.
        self.numpy_calls = 0
        self.loop_calls = 0
        if self.use_numpy:
            self._d = _np.array(self.delays, dtype=_np.float64)
            self._starts = _np.empty(width, dtype=_np.float64)
            self._ends = _np.empty(width, dtype=_np.float64)
            self._sums = _np.empty(width, dtype=_np.float64)
            self._departs = _np.empty(width, dtype=_np.float64)

    def timestamps(
        self, now: float, duration: float
    ) -> Tuple[List[float], List[float], List[float]]:
        """All of one frame's fan-out timestamps, grouped like the scalar path.

        Returns ``(starts, ends, departs)`` where, per neighbour ``i`` with
        propagation delay ``d_i``::

            starts[i]  = now + d_i                  # arrival
            ends[i]    = (now + d_i) + duration     # Signal.end_time
            departs[i] = now + (d_i + duration)     # signal_end event

        The two right-hand columns intentionally group differently (float
        addition is not associative); both lanes preserve each grouping so
        the 1-ULP event-order contract holds bit-for-bit.
        """
        if self.use_numpy:
            self.numpy_calls += 1
            d = self._d
            starts = self._starts
            _np.add(d, now, out=starts)
            _np.add(starts, duration, out=self._ends)
            _np.add(d, duration, out=self._sums)
            _np.add(self._sums, now, out=self._departs)
            return starts.tolist(), self._ends.tolist(), self._departs.tolist()
        self.loop_calls += 1
        starts = []
        ends = []
        departs = []
        append_start = starts.append
        append_end = ends.append
        append_depart = departs.append
        for delay in self.delays:
            t_start = now + delay
            append_start(t_start)
            append_end(t_start + duration)
            append_depart(now + (delay + duration))
        return starts, ends, departs
