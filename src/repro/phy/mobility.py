"""Node mobility (the paper's §6 future work: "support of mobility").

The paper's own evaluation is static, but its problem statement leans on
mobility-induced route failures, so the library ships the canonical MANET
model: **random waypoint**.  Each node repeatedly picks a uniform random
destination in the area, moves toward it at a uniform random speed, pauses,
and repeats.  Positions advance in discrete ticks (the channel's neighbour
cache is rebuilt per tick), which is the standard discrete-event treatment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.simulator import Simulator
from ..sim.timer import PeriodicTimer
from .channel import WirelessChannel
from .position import Position
from .radio import Radio


@dataclass(frozen=True)
class Area:
    """Axis-aligned rectangle nodes roam inside (metres)."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ValueError(f"degenerate area {self}")

    def contains(self, position: Position, slack: float = 1e-6) -> bool:
        return (
            self.x_min - slack <= position.x <= self.x_max + slack
            and self.y_min - slack <= position.y <= self.y_max + slack
        )


@dataclass
class _WaypointState:
    destination: Position
    speed: float
    pause_until: float = 0.0


class RandomWaypointMobility:
    """Random-waypoint movement for a set of radios on one channel."""

    def __init__(
        self,
        sim: Simulator,
        channel: WirelessChannel,
        radios: Iterable[Radio],
        area: Area,
        speed_range: Tuple[float, float] = (1.0, 5.0),
        pause_time: float = 2.0,
        tick_interval: float = 0.5,
        rng_name: str = "mobility",
    ) -> None:
        lo, hi = speed_range
        if not 0 < lo <= hi:
            raise ValueError(f"need 0 < min speed <= max speed, got {speed_range}")
        if tick_interval <= 0:
            raise ValueError(f"tick_interval must be positive, got {tick_interval}")
        if pause_time < 0:
            raise ValueError(f"pause_time must be non-negative, got {pause_time}")
        self.sim = sim
        self.channel = channel
        self.radios: List[Radio] = list(radios)
        self.area = area
        self.speed_range = speed_range
        self.pause_time = pause_time
        self.tick_interval = tick_interval
        self._rng = sim.stream(rng_name)
        self._states: Dict[Radio, _WaypointState] = {}
        self._timer = PeriodicTimer(sim, tick_interval, self._tick, name="mobility")
        self.ticks = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "RandomWaypointMobility":
        """Begin moving; each radio draws its first waypoint immediately."""
        for radio in self.radios:
            self._states[radio] = self._new_leg()
        self._timer.start()
        return self

    def stop(self) -> None:
        self._timer.stop()

    # -- movement ----------------------------------------------------------------

    def _new_leg(self) -> _WaypointState:
        destination = Position(
            self._rng.uniform(self.area.x_min, self.area.x_max),
            self._rng.uniform(self.area.y_min, self.area.y_max),
        )
        speed = self._rng.uniform(*self.speed_range)
        return _WaypointState(destination=destination, speed=speed)

    def _tick(self) -> None:
        self.ticks += 1
        now = self.sim.now
        for radio in self.radios:
            state = self._states[radio]
            if now < state.pause_until:
                continue
            current = self.channel.position_of(radio)
            remaining = current.distance_to(state.destination)
            step = state.speed * self.tick_interval
            if remaining <= step:
                # Arrive, pause, and plan the next leg.
                self.channel.move(radio, state.destination)
                fresh = self._new_leg()
                fresh.pause_until = now + self.pause_time
                self._states[radio] = fresh
                continue
            fraction = step / remaining
            self.channel.move(
                radio,
                Position(
                    current.x + (state.destination.x - current.x) * fraction,
                    current.y + (state.destination.y - current.y) * fraction,
                ),
            )

    # -- inspection ------------------------------------------------------------------

    def destination_of(self, radio: Radio) -> Optional[Position]:
        state = self._states.get(radio)
        return state.destination if state else None
