"""Propagation models.

The paper's NS2 setup uses the two-ray-ground model whose net effect, with
the default 914 MHz Lucent WaveLAN parameters, is a 250 m communication range
and a 550 m carrier-sense/interference range.  We model exactly that effect:
a deterministic disk model with separate receive and sense radii.
"""

from __future__ import annotations

from dataclasses import dataclass

from .position import Position


@dataclass(frozen=True)
class DiskPropagation:
    """Deterministic dual-radius disk propagation model.

    ``rx_range``
        Maximum distance at which a frame can be decoded (paper: 250 m).
    ``cs_range``
        Maximum distance at which energy is detected, i.e. the medium is
        sensed busy and concurrent receptions are corrupted (NS2: 550 m).
    """

    #: NS2's WaveLAN two-ray values are ~250 m / ~550 m.  We default the
    #: carrier-sense radius to 560 m: the corner-to-relay diagonal of the
    #: paper's cross topology is 559 m, i.e. exactly on NS2's knife edge,
    #: and sitting just above it keeps those nodes mutually deferring
    #: instead of mutually hidden (DESIGN.md §6).
    rx_range: float = 250.0
    cs_range: float = 560.0

    def __post_init__(self) -> None:
        if self.rx_range <= 0:
            raise ValueError(f"rx_range must be positive, got {self.rx_range}")
        if self.cs_range < self.rx_range:
            raise ValueError(
                f"cs_range ({self.cs_range}) must be >= rx_range ({self.rx_range})"
            )

    def can_receive(self, a: Position, b: Position) -> bool:
        """True if a transmission from ``a`` is decodable at ``b``."""
        return a.distance_to(b) <= self.rx_range

    def can_sense(self, a: Position, b: Position) -> bool:
        """True if a transmission from ``a`` raises energy at ``b``."""
        return a.distance_to(b) <= self.cs_range

    def rx_power(self, distance: float) -> float:
        """Relative received power at ``distance`` metres.

        Two-ray-ground far-field law (power ~ d^-4), the model behind NS2's
        default wireless PHY; only ratios matter, so units are arbitrary.
        Distances are floored at 1 m to avoid singularities.
        """
        d = max(distance, 1.0)
        return d ** -4.0
