"""The shared wireless channel.

The channel owns the geometry: which radios hear which transmissions and
whether they can decode them.  On each transmission it fans the signal out to
every radio inside carrier-sense range, with per-link propagation delay, and
consults the :class:`~repro.phy.error_models.ErrorModel` at reception time
for random loss.

Neighbour sets are cached; topologies in the paper are static, but the cache
is invalidated automatically when radios are added or moved.

Hot path: :meth:`transmit` is called once per MAC frame (RTS/CTS/DATA/ACK),
and fans out two scheduler events per carrier-sense neighbour.  The fan-out
list per source is precomputed — bound ``signal_start``/``signal_end``
methods, propagation delay and rx power per neighbour — so the per-frame
work is one :class:`Signal` object and two scheduler insertions per
neighbour, with the frame-size lookup hoisted out of the per-signal
departure path.  Sense-only neighbours (inside carrier-sense but outside
decode range) never consult the error model, and a ``NoError`` medium skips
the departure trampoline entirely.

Execution lanes: the channel runs one of two per-frame implementations,
chosen at construction (``phy_lane``) via :func:`repro.phy.batch.resolve_lane`:

* ``scalar`` — the PR-2 reference path: two ``scheduler.schedule`` calls
  per neighbour (always available, the fallback when numpy is missing);
* ``batch`` — the vectorized lane: all fan-out timestamps computed in one
  shot through :class:`repro.phy.batch.BatchFanout` (numpy float64 for wide
  fan-outs, a plain loop below the amortization threshold) and all 2k
  events inserted with one :meth:`EventScheduler.schedule_batch` call.

Both lanes are **byte-identical** in behaviour: same timestamps (same float
grouping), same sequence-number assignment order, same RNG draw sequence —
lane choice may change speed only.  ``tests/props/test_lane_equivalence.py``
and the ``bench_kernel.py --check`` lane-identity gate enforce this.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..sim import units
from ..sim.scheduler import SchedulerError
from ..sim.simulator import Simulator
from .batch import BatchFanout, resolve_lane
from .error_models import ErrorModel, NoError
from .frame_timing import PhyParams
from .position import Position
from .propagation import DiskPropagation
from .radio import Radio, Signal

#: One precomputed fan-out entry:
#: (signal_start, signal_end, receivable, prop_delay, rx_power).
FanoutEntry = Tuple[
    Callable[[Signal], None], Callable[[Signal, bool], None], bool, float, float
]


class WirelessChannel:
    """Broadcast medium connecting all registered radios."""

    def __init__(
        self,
        sim: Simulator,
        propagation: Optional[DiskPropagation] = None,
        phy: Optional[PhyParams] = None,
        error_model: Optional[ErrorModel] = None,
        phy_lane: str = "auto",
    ) -> None:
        self.sim = sim
        self.propagation = propagation or DiskPropagation()
        self.phy = phy or PhyParams()
        self.error_model = error_model or NoError()
        #: Resolved execution lane ("batch" or "scalar"); see module docs.
        self.lane = resolve_lane(phy_lane)
        self._positions: Dict[Radio, Position] = {}
        # radio -> [(peer, receivable, prop_delay, rx_power)]
        self._neighbors: Optional[
            Dict[Radio, List[Tuple[Radio, bool, float, float]]]
        ] = None
        # Derived caches, invalidated together with ``_neighbors``.
        self._fanout: Optional[Dict[Radio, List[FanoutEntry]]] = None
        self._batch_fanout: Optional[Dict[Radio, BatchFanout]] = None
        self._rx_neighbors: Optional[Dict[Radio, List[Radio]]] = None
        self._error_rng = sim.stream("phy.error")
        if self.lane == "batch":
            # Per-instance dispatch: shadowing the bound method costs zero
            # per-frame (no lane branch on the hot path).  ``transmit``
            # itself stays the scalar reference implementation.
            self.transmit = self._transmit_batch  # type: ignore[method-assign]
        # Fault vetoes (node crashes / link blackouts).  They act as
        # topology filters inside the neighbour-cache build, so the per-frame
        # transmit hot path is untouched: fault transitions are rare events
        # that pay one cache rebuild each.
        self._down_nodes: Set[int] = set()
        self._blocked_links: Set[FrozenSet[int]] = set()
        #: Total number of frame transmissions started on this channel.
        self.transmissions = 0
        # Kernel-selection counts folded out of BatchFanout objects retired
        # by a topology invalidation, so lane_counters() survives mobility
        # and fault-driven cache rebuilds.
        self._retired_numpy_frames = 0
        self._retired_loop_frames = 0

    # -- topology ---------------------------------------------------------------

    def register(self, radio: Radio, position: Position) -> None:
        """Attach ``radio`` to the channel at ``position``."""
        self._positions[radio] = position
        self._invalidate()

    def move(self, radio: Radio, position: Position) -> None:
        """Relocate ``radio`` (invalidates the neighbour cache)."""
        if radio not in self._positions:
            raise KeyError(f"radio {radio.node_id} is not on this channel")
        self._positions[radio] = position
        self._invalidate()

    def _invalidate(self) -> None:
        self._neighbors = None
        self._fanout = None
        if self._batch_fanout is not None:
            for fan in self._batch_fanout.values():
                self._retired_numpy_frames += fan.numpy_calls
                self._retired_loop_frames += fan.loop_calls
        self._batch_fanout = None
        self._rx_neighbors = None

    def lane_counters(self) -> Dict[str, object]:
        """Engine-level lane/kernel counters for telemetry manifests.

        Environment facts, not results: lane choice never changes a single
        event, so these counters live in run manifests (and campaign span
        attributes) rather than the fingerprinted metrics snapshot — the
        same run on the scalar lane would report different numbers here
        while producing byte-identical results.
        """
        numpy_frames = self._retired_numpy_frames
        loop_frames = self._retired_loop_frames
        if self._batch_fanout is not None:
            for fan in self._batch_fanout.values():
                numpy_frames += fan.numpy_calls
                loop_frames += fan.loop_calls
        return {
            "lane": self.lane,
            "transmissions": self.transmissions,
            "numpy_fanout_frames": numpy_frames,
            "loop_fanout_frames": loop_frames,
        }

    def position_of(self, radio: Radio) -> Position:
        return self._positions[radio]

    # -- fault vetoes -----------------------------------------------------------

    def set_node_down(self, node_id: int, down: bool) -> None:
        """Mark a crashed (or restarted) node; a down node neither radiates
        to nor hears any neighbour."""
        if down:
            self._down_nodes.add(node_id)
        else:
            self._down_nodes.discard(node_id)
        self._invalidate()

    def block_link(self, a: int, b: int) -> None:
        """Veto the ``a``–``b`` pair in both directions (blackout/partition)."""
        self._blocked_links.add(frozenset((a, b)))
        self._invalidate()

    def unblock_link(self, a: int, b: int) -> None:
        """Lift a link veto (healing is a no-op for an unblocked pair)."""
        self._blocked_links.discard(frozenset((a, b)))
        self._invalidate()

    def _vetoed(self, src: Radio, dst: Radio) -> bool:
        if not self._down_nodes and not self._blocked_links:
            return False
        if src.node_id in self._down_nodes or dst.node_id in self._down_nodes:
            return True
        return frozenset((src.node_id, dst.node_id)) in self._blocked_links

    def _neighbor_map(self) -> Dict[Radio, List[Tuple[Radio, bool, float, float]]]:
        if self._neighbors is None:
            table: Dict[Radio, List[Tuple[Radio, bool, float, float]]] = {}
            radios = list(self._positions)
            for src in radios:
                src_pos = self._positions[src]
                entries: List[Tuple[Radio, bool, float, float]] = []
                for dst in radios:
                    if dst is src:
                        continue
                    if self._vetoed(src, dst):
                        continue
                    dst_pos = self._positions[dst]
                    if not self.propagation.can_sense(src_pos, dst_pos):
                        continue
                    distance = src_pos.distance_to(dst_pos)
                    receivable = self.propagation.can_receive(src_pos, dst_pos)
                    delay = units.propagation_delay(distance)
                    power = self.propagation.rx_power(distance)
                    entries.append((dst, receivable, delay, power))
                table[src] = entries
            self._neighbors = table
        return self._neighbors

    def _fanout_map(self) -> Dict[Radio, List[FanoutEntry]]:
        if self._fanout is None:
            self._fanout = {
                src: [
                    (dst.signal_start, dst.signal_end, receivable, delay, power)
                    for dst, receivable, delay, power in entries
                ]
                for src, entries in self._neighbor_map().items()
            }
        return self._fanout

    def _batch_map(self) -> Dict[Radio, BatchFanout]:
        """Per-source :class:`BatchFanout` kernels (batch lane only).

        Built from the scalar fan-out in the same neighbour order, so
        sequence numbers are assigned identically across lanes.
        """
        if self._batch_fanout is None:
            self._batch_fanout = {
                src: BatchFanout(entries)
                for src, entries in self._fanout_map().items()
            }
        return self._batch_fanout

    def neighbors_of(self, radio: Radio) -> List[Radio]:
        """Radios within decode range of ``radio`` (static disk model).

        The list is cached per radio until the topology changes; treat it as
        read-only.
        """
        if self._rx_neighbors is None:
            self._rx_neighbors = {
                src: [dst for dst, receivable, _, _ in entries if receivable]
                for src, entries in self._neighbor_map().items()
            }
        return self._rx_neighbors[radio]

    # -- transmission -------------------------------------------------------------

    def transmit(self, src: Radio, frame: object, duration: float) -> None:
        """Put ``frame`` on the air from ``src`` for ``duration`` seconds.

        The caller (MAC) has already decided the medium is usable; the channel
        faithfully models the consequences if it was wrong (collisions).
        """
        self.transmissions += 1
        src.begin_transmit(duration)
        fanout = self._fanout_map()[src]
        sched = self.sim.scheduler
        schedule = sched.schedule
        now = sched.now
        schedule(now + duration, src.end_transmit, name="phy.tx_end")
        if self.sim.trace.wants("phy.tx"):
            self.sim.emit(
                "phy", "phy.tx", src=src.node_id, duration=duration,
                neighbors=len(fanout),
            )
        nbytes = getattr(frame, "size_bytes", 0)
        no_error = type(self.error_model) is NoError
        # Timestamp arithmetic must group exactly as the historical
        # per-neighbour code did — float addition is not associative, and a
        # 1-ULP shift here reorders events and breaks golden-trace replay:
        # arrival at now + delay, departure at now + (delay + duration),
        # signal end marker at (now + delay) + duration.
        for sig_start, sig_end, receivable, delay, power in fanout:
            t_start = now + delay
            signal = Signal(frame, receivable, t_start + duration, power=power)
            schedule(t_start, sig_start, signal, name="phy.sig_start")
            if receivable and not no_error:
                schedule(
                    now + (delay + duration), self._depart, sig_end, signal,
                    nbytes, name="phy.sig_end",
                )
            else:
                # Sense-only neighbours and a perfect medium never consult
                # the error model; deliver the end-of-signal directly.
                schedule(
                    now + (delay + duration), sig_end, signal, False,
                    name="phy.sig_end",
                )

    def _transmit_batch(self, src: Radio, frame: object, duration: float) -> None:
        """Batch-lane :meth:`transmit`: same events, one bulk insertion.

        Mirrors the scalar path observable-for-observable — same counters,
        same trace emit, same scheduling *order* (tx_end first, then per
        neighbour arrival/departure pairs in fan-out order) so sequence
        numbers come out identical.  The timestamps arrive precomputed from
        the fan-out kernel with the scalar float grouping, and the 2k+1
        events skip :class:`Event` construction entirely: the loop builds
        the scheduler's fire-and-forget heap tuples directly (seqs claimed
        up front with ``reserve_seqs``) and hands them to one
        ``bulk_heap_insert`` call — none of these events is ever cancelled,
        the scalar path discards their handles too.
        """
        self.transmissions += 1
        src.begin_transmit(duration)
        fan = self._batch_map()[src]
        sched = self.sim.scheduler
        now = sched.now
        if duration < 0:
            # Same failure the scalar lane's first schedule() call raises;
            # checked here because bulk_heap_insert trusts its times.
            raise SchedulerError(
                f"cannot schedule event at {now + duration:.9f}, "
                f"now is {now:.9f}"
            )
        # Two seq reservations, not one: the scalar path assigns tx_end's
        # seq before the trace emit and the neighbour seqs after it, so even
        # a trace sink that schedules during the emit sees identical seq
        # interleaving on both lanes.
        items = [
            (now + duration, 0, sched.reserve_seqs(1), (src.end_transmit, ()))
        ]
        if self.sim.trace.wants("phy.tx"):
            self.sim.emit(
                "phy", "phy.tx", src=src.node_id, duration=duration,
                neighbors=fan.width,
            )
        nbytes = getattr(frame, "size_bytes", 0)
        no_error = type(self.error_model) is NoError
        starts, ends, departs = fan.timestamps(now, duration)
        depart = self._depart
        append = items.append
        seq = sched.reserve_seqs(2 * fan.width) - 1
        # zip() iteration over the parallel timestamp lists measures ~20%
        # faster than indexed access at experiment fan-out widths.
        for (sig_start, sig_end, receivable, power), t_start, t_end, t_depart \
                in zip(fan.neighbors, starts, ends, departs):
            signal = Signal(frame, receivable, t_end, power)
            seq += 1
            append((t_start, 0, seq, (sig_start, (signal,))))
            seq += 1
            if receivable and not no_error:
                append((t_depart, 0, seq, (depart, (sig_end, signal, nbytes))))
            else:
                # Sense-only neighbours and a perfect medium never consult
                # the error model; deliver the end-of-signal directly.
                append((t_depart, 0, seq, (sig_end, (signal, False))))
        sched.bulk_heap_insert(items)

    def _depart(
        self,
        sig_end: Callable[[Signal, bool], None],
        signal: Signal,
        nbytes: int,
    ) -> None:
        corrupted_by_medium = False
        if not signal.corrupted:
            corrupted_by_medium = self.error_model.frame_corrupted(
                self._error_rng, nbytes, self.sim.now
            )
        sig_end(signal, corrupted_by_medium)
