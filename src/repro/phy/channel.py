"""The shared wireless channel.

The channel owns the geometry: which radios hear which transmissions and
whether they can decode them.  On each transmission it fans the signal out to
every radio inside carrier-sense range, with per-link propagation delay, and
consults the :class:`~repro.phy.error_models.ErrorModel` at reception time
for random loss.

Neighbour sets are cached; topologies in the paper are static, but the cache
is invalidated automatically when radios are added or moved.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim import units
from ..sim.simulator import Simulator
from .error_models import ErrorModel, NoError
from .frame_timing import PhyParams
from .position import Position
from .propagation import DiskPropagation
from .radio import Radio, Signal


class WirelessChannel:
    """Broadcast medium connecting all registered radios."""

    def __init__(
        self,
        sim: Simulator,
        propagation: Optional[DiskPropagation] = None,
        phy: Optional[PhyParams] = None,
        error_model: Optional[ErrorModel] = None,
    ) -> None:
        self.sim = sim
        self.propagation = propagation or DiskPropagation()
        self.phy = phy or PhyParams()
        self.error_model = error_model or NoError()
        self._positions: Dict[Radio, Position] = {}
        # radio -> [(peer, receivable, prop_delay, rx_power)]
        self._neighbors: Optional[
            Dict[Radio, List[Tuple[Radio, bool, float, float]]]
        ] = None
        self._error_rng = sim.stream("phy.error")
        #: Total number of frame transmissions started on this channel.
        self.transmissions = 0

    # -- topology ---------------------------------------------------------------

    def register(self, radio: Radio, position: Position) -> None:
        """Attach ``radio`` to the channel at ``position``."""
        self._positions[radio] = position
        self._neighbors = None

    def move(self, radio: Radio, position: Position) -> None:
        """Relocate ``radio`` (invalidates the neighbour cache)."""
        if radio not in self._positions:
            raise KeyError(f"radio {radio.node_id} is not on this channel")
        self._positions[radio] = position
        self._neighbors = None

    def position_of(self, radio: Radio) -> Position:
        return self._positions[radio]

    def _neighbor_map(self) -> Dict[Radio, List[Tuple[Radio, bool, float, float]]]:
        if self._neighbors is None:
            table: Dict[Radio, List[Tuple[Radio, bool, float, float]]] = {}
            radios = list(self._positions)
            for src in radios:
                src_pos = self._positions[src]
                entries: List[Tuple[Radio, bool, float, float]] = []
                for dst in radios:
                    if dst is src:
                        continue
                    dst_pos = self._positions[dst]
                    if not self.propagation.can_sense(src_pos, dst_pos):
                        continue
                    distance = src_pos.distance_to(dst_pos)
                    receivable = self.propagation.can_receive(src_pos, dst_pos)
                    delay = units.propagation_delay(distance)
                    power = self.propagation.rx_power(distance)
                    entries.append((dst, receivable, delay, power))
                table[src] = entries
            self._neighbors = table
        return self._neighbors

    def neighbors_of(self, radio: Radio) -> List[Radio]:
        """Radios within decode range of ``radio`` (static disk model)."""
        return [
            peer
            for peer, receivable, _, _ in self._neighbor_map()[radio]
            if receivable
        ]

    # -- transmission -------------------------------------------------------------

    def transmit(self, src: Radio, frame: object, duration: float) -> None:
        """Put ``frame`` on the air from ``src`` for ``duration`` seconds.

        The caller (MAC) has already decided the medium is usable; the channel
        faithfully models the consequences if it was wrong (collisions).
        """
        self.transmissions += 1
        src.begin_transmit(duration)
        self.sim.after(duration, src.end_transmit, name="phy.tx_end")
        for dst, receivable, delay, power in self._neighbor_map()[src]:
            signal = Signal(
                frame, receivable, self.sim.now + delay + duration, power=power
            )
            self.sim.after(delay, self._arrive, dst, signal, name="phy.sig_start")
            self.sim.after(
                delay + duration, self._depart, dst, signal, name="phy.sig_end"
            )

    def _arrive(self, dst: Radio, signal: Signal) -> None:
        dst.signal_start(signal)

    def _depart(self, dst: Radio, signal: Signal) -> None:
        corrupted_by_medium = False
        if signal.receivable and not signal.corrupted:
            nbytes = getattr(signal.frame, "size_bytes", 0)
            corrupted_by_medium = self.error_model.frame_corrupted(
                self._error_rng, nbytes, self.sim.now
            )
        dst.signal_end(signal, corrupted_by_medium)
