"""Half-duplex radio: per-node transmit/receive state and collision tracking.

A :class:`Radio` tracks every signal currently on the air at its location
(delivered by the :class:`~repro.phy.channel.WirelessChannel`).  Reception
fails when signals overlap (collision), when the node is itself transmitting
(half duplex), or when the channel error model corrupts the frame (random
loss).  The radio reports busy/idle transitions and frame outcomes to its MAC
through the narrow :class:`PhyListener` interface.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from ..sim.simulator import Simulator


class PhyListener(Protocol):
    """What a MAC must implement to sit on top of a :class:`Radio`."""

    def phy_channel_busy(self) -> None:
        """The medium transitioned idle -> busy at this node."""

    def phy_channel_idle(self) -> None:
        """The medium transitioned busy -> idle at this node."""

    def phy_receive(self, frame: object) -> None:
        """A frame was decoded successfully."""

    def phy_rx_error(self) -> None:
        """A decodable frame was lost (collision or bit errors)."""


class Signal:
    """One transmission as heard at a particular radio."""

    __slots__ = ("frame", "receivable", "corrupted", "end_time", "power")

    def __init__(
        self,
        frame: object,
        receivable: bool,
        end_time: float,
        power: float = 1.0,
    ) -> None:
        self.frame = frame
        #: True when the sender is within decode range of this radio.
        self.receivable = receivable
        #: Set when an overlap or the node's own transmission ruins decoding.
        self.corrupted = False
        self.end_time = end_time
        #: Relative received power (propagation-model units).
        self.power = power


class Radio:
    """Physical-layer state machine for a single node.

    ``capture_ratio`` implements the capture effect (NS2's ``CPThresh_``):
    of two overlapping signals, the one at least that factor stronger
    survives; comparable powers destroy both.  We default to 20 rather than
    NS2's 10: under the pure d^-4 disk abstraction a threshold of 10 makes
    the two-hops-away chain interferer (power ratio 16) harmless and chains
    become implausibly lossless, while 20 restores the intra-chain
    contention losses the paper's evaluation revolves around yet still lets
    near-field frames (ratio >= 25) survive far-field interference.  See
    DESIGN.md §6.
    """

    def __init__(
        self, sim: Simulator, node_id: int, capture_ratio: float = 20.0
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.capture_ratio = capture_ratio
        self.listener: Optional[PhyListener] = None
        #: True while the node is powered off (fault injection); a down
        #: radio neither tracks nor delivers signals.
        self.down = False
        self._signals: List[Signal] = []
        self._transmitting = False
        self._tx_end = 0.0
        # Decode-outcome counters over receivable signals, harvested by
        # repro.obs.metrics.collect_network_metrics.
        self.rx_ok = 0
        self.collisions = 0
        self.medium_errors = 0

    # -- state inspection -----------------------------------------------------

    @property
    def transmitting(self) -> bool:
        return self._transmitting

    @property
    def carrier_busy(self) -> bool:
        """Physical carrier sense: own TX or any energy on the air here."""
        return self._transmitting or bool(self._signals)

    # -- power state (fault injection) ------------------------------------------

    def shutdown(self) -> None:
        """Power off mid-flight: discard in-progress receptions and TX state.

        Signal-end events for the discarded receptions may already be on the
        scheduler; :meth:`signal_end` tolerates them (the signal is simply
        no longer tracked here).
        """
        self.down = True
        self._signals.clear()
        self._transmitting = False

    def restore(self) -> None:
        """Power back on with a clean slate (any mid-air frames are missed)."""
        self.down = False
        self._tx_end = 0.0

    # -- transmit side (driven by the channel) ---------------------------------

    def begin_transmit(self, duration: float) -> None:
        """Enter TX state for ``duration``; ruins any in-progress receptions."""
        if self.down:
            return  # a powered-off radio cannot key up
        if self._transmitting:
            raise RuntimeError(f"radio {self.node_id} is already transmitting")
        was_busy = self.carrier_busy
        self._transmitting = True
        self._tx_end = self.sim.now + duration
        for signal in self._signals:
            signal.corrupted = True
        if not was_busy and self.listener is not None:
            self.listener.phy_channel_busy()

    def end_transmit(self) -> None:
        """Leave TX state; reports idle if nothing remains on the air."""
        self._transmitting = False
        if self.down:
            return  # stale tx-end after a mid-transmission shutdown
        if not self.carrier_busy and self.listener is not None:
            self.listener.phy_channel_idle()

    # -- receive side (driven by the channel) ----------------------------------

    def signal_start(self, signal: Signal) -> None:
        """A transmission began arriving at this radio."""
        if self.down:
            return  # in-flight arrival at a powered-off radio: lost energy
        # carrier_busy inlined: this runs once per fan-out arrival, and the
        # property costs a Python-level descriptor call on the hot path.
        was_busy = self._transmitting or bool(self._signals)
        if self._transmitting:
            signal.corrupted = True
        for other in self._signals:
            # SINR-style symmetric capture: whichever signal is at least
            # capture_ratio stronger survives the overlap; comparable powers
            # destroy both.  This deviates from NS2's literal first-arrival
            # lock (where weak early energy blots out a far stronger later
            # frame) in favour of physical plausibility — see DESIGN.md §6;
            # without it, background energy from 2x-range neighbours makes
            # every busy region permanently undecodable.
            if other.power >= signal.power * self.capture_ratio:
                signal.corrupted = True
            elif signal.power >= other.power * self.capture_ratio:
                other.corrupted = True
            else:
                signal.corrupted = True
                other.corrupted = True
        self._signals.append(signal)
        if not was_busy and self.listener is not None:
            self.listener.phy_channel_busy()

    def signal_end(self, signal: Signal, corrupted_by_medium: bool) -> None:
        """A transmission finished arriving; deliver or report the loss."""
        try:
            self._signals.remove(signal)
        except ValueError:
            # The signal was discarded by a mid-flight shutdown (possibly
            # followed by a restart); the frame is simply lost.
            return
        decodable = signal.receivable and not signal.corrupted
        if signal.receivable:
            if signal.corrupted:
                self.collisions += 1
            elif corrupted_by_medium:
                self.medium_errors += 1
            else:
                self.rx_ok += 1
        if self.listener is not None:
            if decodable and not corrupted_by_medium:
                self.listener.phy_receive(signal.frame)
            elif signal.receivable:
                self.listener.phy_rx_error()
        if self.listener is not None and not (
            self._transmitting or self._signals
        ):
            self.listener.phy_channel_idle()
