"""Wireless physical layer (substrate S2).

Disk propagation with separate receive/carrier-sense radii, half-duplex
radios with full collision tracking, DSSS frame timing, and pluggable random
loss models (uniform BER, bursty Gilbert–Elliott, fixed packet error rate).
"""

from .channel import WirelessChannel
from .error_models import (
    ErrorModel,
    GilbertElliott,
    NoError,
    PacketErrorRate,
    UniformBitError,
)
from .frame_timing import PhyParams
from .mobility import Area, RandomWaypointMobility
from .position import Position
from .propagation import DiskPropagation
from .radio import PhyListener, Radio, Signal

__all__ = [
    "Area",
    "DiskPropagation",
    "ErrorModel",
    "GilbertElliott",
    "NoError",
    "PacketErrorRate",
    "PhyListener",
    "PhyParams",
    "Position",
    "Radio",
    "RandomWaypointMobility",
    "Signal",
    "UniformBitError",
    "WirelessChannel",
]
