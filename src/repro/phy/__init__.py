"""Wireless physical layer (substrate S2).

Disk propagation with separate receive/carrier-sense radii, half-duplex
radios with full collision tracking, DSSS frame timing, and pluggable random
loss models (uniform BER, bursty Gilbert–Elliott, fixed packet error rate).

The per-frame fan-out runs on one of two byte-identical execution lanes
(``repro.phy.batch``): the numpy-vectorized batch lane (default when numpy
is importable) or the scalar reference lane (always available).
"""

from .batch import HAVE_NUMPY, LANES, NUMPY_MIN_FANOUT, BatchFanout, resolve_lane
from .channel import WirelessChannel
from .error_models import (
    ErrorModel,
    GilbertElliott,
    NoError,
    PacketErrorRate,
    UniformBitError,
)
from .frame_timing import PhyParams
from .mobility import Area, RandomWaypointMobility
from .position import Position
from .propagation import DiskPropagation
from .radio import PhyListener, Radio, Signal

__all__ = [
    "Area",
    "BatchFanout",
    "DiskPropagation",
    "ErrorModel",
    "GilbertElliott",
    "HAVE_NUMPY",
    "LANES",
    "NUMPY_MIN_FANOUT",
    "NoError",
    "PacketErrorRate",
    "PhyListener",
    "PhyParams",
    "Position",
    "Radio",
    "RandomWaypointMobility",
    "Signal",
    "UniformBitError",
    "WirelessChannel",
    "resolve_lane",
]
