"""Physical-layer timing parameters (802.11 DSSS, as in NS2's Mac/802_11).

Control frames (RTS/CTS/ACK) go out at the *basic* rate; data frames at the
*data* rate.  Every frame is preceded by the PLCP preamble + header, sent at
1 Mb/s regardless of payload rate (long-preamble DSSS), which is a large and
behaviourally important per-frame overhead at 2 Mb/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import units


@dataclass(frozen=True)
class PhyParams:
    """Radio timing/rate parameters.

    Defaults model the paper's setup: 2 Mb/s half-duplex radios with DSSS
    (802.11b-style) framing.
    """

    data_rate: float = units.mbps(2.0)
    basic_rate: float = units.mbps(1.0)
    plcp_overhead: float = units.microseconds(192.0)

    def data_tx_time(self, nbytes: int) -> float:
        """Airtime of a data frame of ``nbytes`` (MAC frame incl. headers)."""
        return self.plcp_overhead + units.tx_duration(nbytes, self.data_rate)

    def control_tx_time(self, nbytes: int) -> float:
        """Airtime of a control frame of ``nbytes`` at the basic rate."""
        return self.plcp_overhead + units.tx_duration(nbytes, self.basic_rate)
