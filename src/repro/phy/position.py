"""2-D node positions.

The paper's topologies are planar (chains along an axis, a cross in a plane),
so positions are 2-D points in metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Position:
    """A point in the plane, in metres."""

    x: float
    y: float = 0.0

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def __repr__(self) -> str:
        return f"({self.x:g}, {self.y:g})"
