"""Figures 5.2–5.7: change of congestion window size over time.

One single-FTP-flow run per protocol on a 4/8/16-hop chain; the benchmark
prints per-variant cwnd summaries plus ASCII trace charts for the full
window (0–10 s) and the zoomed ramp (0–2 s), mirroring the paper's paired
figures, and asserts the paper's qualitative claims:

* Muzha ramps promptly and then holds a stable window;
* NewReno/SACK oscillate (their traces have many more window changes);
* Vegas stays small and steady.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    export_multi_series_csv,
    fig_cwnd_traces,
    format_traces_summary,
)
from repro.experiments.reporting import ascii_series
from repro.stats.timeseries import resample, time_average

from conftest import banner, figures_dir, run_once

VARIANTS = ("muzha", "newreno", "sack", "vegas")
SIM_TIME = 10.0


def _campaign(hops):
    def run():
        return fig_cwnd_traces(
            hops, variants=VARIANTS, window=32, sim_time=SIM_TIME, seed=1
        )

    return run


def _report(traces, hops):
    banner(f"Figs 5.{2 + (hops // 8) * 2}–5.{3 + (hops // 8) * 2} — cwnd traces, {hops}-hop chain")
    print(format_traces_summary(traces, SIM_TIME))
    export_multi_series_csv(
        traces, figures_dir() / f"fig5_cwnd_traces_{hops}hop.csv"
    )
    for variant, trace in traces.items():
        zoom = [(t, v) for t, v in trace if t <= 2.0]
        print()
        print(ascii_series(zoom or trace[:1], label=f"cwnd 0-2s: {variant}"))


def _assert_shapes(traces):
    # Muzha holds steady after the ramp: far fewer window changes in the
    # second half of the run than NewReno-style senders.
    def changes_after(trace, t0):
        return sum(1 for t, _ in trace if t >= t0)

    muzha_changes = changes_after(traces["muzha"], SIM_TIME / 2)
    newreno_changes = changes_after(traces["newreno"], SIM_TIME / 2)
    assert muzha_changes <= newreno_changes, (
        f"Muzha should be the stabler window: {muzha_changes} vs {newreno_changes}"
    )
    # Vegas keeps a small window (the paper: ~3 packets).
    vegas_mean = time_average(traces["vegas"], 1.0, SIM_TIME)
    assert vegas_mean < 8.0
    # Every variant actually ramped off the initial window.
    for variant, trace in traces.items():
        assert max(v for _, v in trace) >= 2.0, f"{variant} never grew"


@pytest.mark.parametrize("hops", [4, 8, 16])
def test_fig5_cwnd_traces(benchmark, hops):
    traces = run_once(benchmark, _campaign(hops))
    _report(traces, hops)
    _assert_shapes(traces)
