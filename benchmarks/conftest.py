"""Shared fixtures for the figure-regeneration benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding simulation campaign, prints the same rows/series the paper
plots, and asserts the qualitative shape (who wins, monotonicity, fairness
ordering).  Set ``REPRO_FULL=1`` for paper-scale campaigns (longer
simulations, full hop grids, more seeds).

The chain sweeps behind Figs 5.8-5.13 are expensive, so they are computed
once per advertised window in a session-scoped cache shared by the
throughput and retransmission benchmarks.
"""

from __future__ import annotations

from typing import Dict

import pytest


def pytest_collection_modifyitems(config, items):
    """Mark everything under benchmarks/ as ``perf``.

    The tier-1 run (``pytest -x -q``) only collects ``tests/`` via
    ``testpaths``, so benchmarks never slow it down; the marker additionally
    lets explicit benchmark invocations filter with ``-m "not perf"`` or
    ``-m perf``.
    """
    for item in items:
        item.add_marker(pytest.mark.perf)

from repro.experiments import SweepConfig, SweepResult, throughput_retransmit_sweep

_SWEEP_CACHE: Dict[int, SweepResult] = {}


@pytest.fixture(scope="session")
def sweep_for_window():
    """Callable returning the (cached) Fig 5.8-5.13 sweep for a window."""

    def get(window: int) -> SweepResult:
        if window not in _SWEEP_CACHE:
            _SWEEP_CACHE[window] = throughput_retransmit_sweep(
                window, sweep=SweepConfig.for_scale()
            )
        return _SWEEP_CACHE[window]

    return get


def run_once(benchmark, func):
    """Run a figure campaign exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def figures_dir():
    """Where benchmarks drop their CSV artefacts (repo-level results/)."""
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "results" / "figures"
    path.mkdir(parents=True, exist_ok=True)
    return path
