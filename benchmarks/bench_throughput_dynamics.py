"""Figures 5.19–5.22: Simulation 3B — throughput dynamics of three flows.

Three same-protocol FTP flows share a 4-hop chain, entering at 0 s, 10 s and
20 s.  The benchmark prints each flow's per-second goodput series (the
paper's four figures, one per protocol) and asserts the paper's claim that
Muzha's flows converge to a fair share, with the convergence measured by
the Jain index over the final window of the run.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ascii_series,
    export_multi_series_csv,
    fig_dynamics,
    full_scale,
)
from repro.stats import jain_index

from conftest import banner, figures_dir, run_once

VARIANT_FIGURES = {
    "muzha": "5.19",
    "newreno": "5.20",
    "sack": "5.21",
    "vegas": "5.22",
}
SIM_TIME = 40.0
STARTS = (0.0, 10.0, 20.0)


def _tail_rates(flow, t0):
    return [rate for t, rate in flow.rate_series_kbps if t >= t0]


def _tail_mean(flow, t0):
    rates = _tail_rates(flow, t0)
    return sum(rates) / len(rates) if rates else 0.0


def _campaign(variant):
    def run():
        return fig_dynamics(
            variant, hops=4, starts=STARTS, sim_time=SIM_TIME, seed=1, window=4
        )

    return run


@pytest.mark.parametrize("variant", list(VARIANT_FIGURES))
def test_fig5_19_to_22_dynamics(benchmark, variant):
    result = run_once(benchmark, _campaign(variant))
    banner(
        f"Fig {VARIANT_FIGURES[variant]} — Throughput dynamics "
        f"[three flows] — {variant}"
    )
    for i, flow in enumerate(result.flows):
        print(
            ascii_series(
                flow.rate_series_kbps,
                label=f"flow {i} (enters {STARTS[i]:g}s), kbps",
            )
        )
        print()

    export_multi_series_csv(
        {f"flow{i}": flow.rate_series_kbps for i, flow in enumerate(result.flows)},
        figures_dir() / f"fig{VARIANT_FIGURES[variant]}_dynamics_{variant}.csv",
    )
    shares = [_tail_mean(flow, 30.0) for flow in result.flows]
    fairness = jain_index(shares)
    print(f"final-window shares (kbps): {[round(s, 1) for s in shares]}")
    print(f"final-window Jain index: {fairness:.3f}")

    # Every flow must be alive once all three have entered.
    for i, share in enumerate(shares):
        assert share > 5.0, f"{variant} flow {i} starved: {shares}"

    if variant == "muzha":
        # The paper's claim: Muzha converges to fair utilisation.
        assert fairness > 0.7, f"Muzha flows failed to converge: {shares}"
