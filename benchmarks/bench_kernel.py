"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these track the cost of the hot paths (event loop,
MAC exchange, full-stack packet delivery) so substrate regressions are
visible next to the figure campaigns.
"""

from __future__ import annotations

from repro.experiments import ScenarioConfig, run_chain
from repro.sim import EventScheduler


def test_scheduler_event_throughput(benchmark):
    """Schedule-and-run cost of 10k timer events."""

    def campaign():
        sched = EventScheduler()
        counter = [0]

        def tick():
            counter[0] += 1

        for i in range(10_000):
            sched.schedule(i * 1e-4, tick)
        sched.run()
        return counter[0]

    assert benchmark(campaign) == 10_000


def test_mac_exchange_rate(benchmark):
    """Saturated one-hop 802.11 exchange rate (RTS/CTS/DATA/ACK each)."""
    from repro.mac.dcf import QueuedPacket
    from repro.routing import install_static_routing
    from repro.topology import build_chain
    from repro.traffic import start_ftp

    def campaign():
        net = build_chain(1, seed=1)
        install_static_routing(net.nodes, net.channel)
        flow = start_ftp(net.sim, net.nodes[0], net.nodes[1], variant="newreno", window=8)
        net.sim.run(until=5.0)
        return flow.sink.delivered_packets

    delivered = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert delivered > 200  # ~ >40 packets/s over one hop


def test_full_stack_chain_run(benchmark):
    """End-to-end cost of a standard 4-hop, 10 s Muzha experiment."""

    def campaign():
        result = run_chain(4, ["muzha"], config=ScenarioConfig(sim_time=10.0, seed=1))
        return result.flows[0].delivered_packets

    delivered = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert delivered > 100
