"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these track the cost of the hot paths so substrate
regressions are visible next to the figure campaigns.  Four metrics:

* ``scheduler_events_per_sec`` — schedule-and-run cost of plain timer events;
* ``scheduler_churn_ops_per_sec`` — the MAC backoff pattern
  (schedule -> cancel -> reschedule), which exercises lazy deletion and the
  event freelist;
* ``channel_fanout_tx_per_sec`` — per-transmission fan-out cost on an 8-radio
  chain (Signal construction + 2 events per carrier-sense neighbour);
* ``full_chain_packets_per_sec`` — end-to-end packets/sec of the standard
  4-hop, 10 s Muzha run.

Two entry points:

* ``python benchmarks/bench_kernel.py`` — runs the suite, prints a table,
  writes ``results/BENCH_kernel.json`` (current numbers next to the committed
  before/after baseline), and with ``--check`` exits non-zero on a >30%
  events/sec regression against the committed post-overhaul baseline;
* ``pytest benchmarks/bench_kernel.py`` — the same measurements as
  pytest-benchmark cases, marked ``perf`` and excluded from the tier-1 run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict

import pytest

BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "bench_kernel_baseline.json"
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "results" / "BENCH_kernel.json"

pytestmark = pytest.mark.perf


# -- measurement cores (shared by pytest and the standalone runner) ----------


def run_scheduler_throughput(n: int = 50_000) -> int:
    """Schedule-and-run ``n`` timer events; returns the fired count."""
    from repro.sim import EventScheduler

    sched = EventScheduler()
    counter = [0]

    def tick():
        counter[0] += 1

    for i in range(n):
        sched.schedule(i * 1e-5, tick)
    sched.run()
    return counter[0]


def run_scheduler_churn(n: int = 20_000) -> int:
    """The MAC backoff pattern: schedule -> cancel -> reschedule, n times.

    Returns the number of scheduler operations performed (3 per round).
    """
    from repro.sim import EventScheduler

    sched = EventScheduler()
    fired = [0]

    def tick():
        fired[0] += 1

    t = 0.0
    for _ in range(n):
        doomed = sched.schedule(t + 1.0, tick)
        sched.cancel(doomed)
        sched.schedule(t + 1e-5, tick)
        sched.run(max_events=1)
        t = sched.now
    assert fired[0] == n
    return 3 * n


def run_channel_fanout(n_tx: int = 2_000) -> int:
    """Fan ``n_tx`` frames out from the middle of an 8-radio chain."""
    from repro.phy import Position, WirelessChannel
    from repro.phy.radio import Radio
    from repro.sim import Simulator

    sim = Simulator(seed=1)
    channel = WirelessChannel(sim)
    radios = [Radio(sim, i) for i in range(8)]
    for i, radio in enumerate(radios):
        channel.register(radio, Position(200.0 * i, 0.0))

    class Frame:
        size_bytes = 1000

    frame = Frame()
    for _ in range(n_tx):
        channel.transmit(radios[3], frame, 1e-4)
        sim.run(until=sim.now + 1e-3)
    return n_tx


def run_full_chain() -> int:
    """The standard 4-hop, 10 s Muzha experiment; returns delivered packets."""
    from repro.experiments import ScenarioConfig, run_chain

    result = run_chain(4, ["muzha"], config=ScenarioConfig(sim_time=10.0, seed=1))
    return result.flows[0].delivered_packets


def _rate(work: Callable[[], int], reps: int) -> float:
    """Best observed ops/sec over ``reps`` repetitions."""
    best = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        ops = work()
        dt = time.perf_counter() - t0
        best = max(best, ops / dt)
    return best


def measure_all(fast: bool = False) -> Dict[str, float]:
    """Run the whole suite; returns metric-name -> ops/sec."""
    reps = 2 if fast else 5
    return {
        "scheduler_events_per_sec": _rate(run_scheduler_throughput, reps),
        "scheduler_churn_ops_per_sec": _rate(run_scheduler_churn, reps),
        "channel_fanout_tx_per_sec": _rate(run_channel_fanout, max(2, reps - 2)),
        "full_chain_packets_per_sec": _rate(run_full_chain, 1 if fast else 2),
    }


# -- pytest-benchmark cases --------------------------------------------------


def test_scheduler_event_throughput(benchmark):
    """Schedule-and-run cost of 50k timer events."""
    assert benchmark(run_scheduler_throughput) == 50_000


def test_scheduler_churn(benchmark):
    """Lazy-deletion + freelist cost of the MAC backoff pattern."""
    assert benchmark.pedantic(run_scheduler_churn, rounds=3, iterations=1) == 60_000


def test_channel_fanout(benchmark):
    """Per-transmission fan-out cost on an 8-radio chain."""
    assert benchmark.pedantic(run_channel_fanout, rounds=3, iterations=1) == 2_000


def test_mac_exchange_rate(benchmark):
    """Saturated one-hop 802.11 exchange rate (RTS/CTS/DATA/ACK each)."""
    from repro.routing import install_static_routing
    from repro.topology import build_chain
    from repro.traffic import start_ftp

    def campaign():
        net = build_chain(1, seed=1)
        install_static_routing(net.nodes, net.channel)
        flow = start_ftp(net.sim, net.nodes[0], net.nodes[1], variant="newreno", window=8)
        net.sim.run(until=5.0)
        return flow.sink.delivered_packets

    delivered = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert delivered > 200  # ~ >40 packets/s over one hop


def test_full_stack_chain_run(benchmark):
    """End-to-end cost of a standard 4-hop, 10 s Muzha experiment."""
    delivered = benchmark.pedantic(run_full_chain, rounds=1, iterations=1)
    assert delivered > 100


# -- standalone runner -------------------------------------------------------


def load_baseline() -> dict:
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def build_report(current: Dict[str, float], baseline: dict) -> dict:
    """Current numbers alongside the committed before/after baseline."""
    metrics = {}
    for name, rate in current.items():
        entry = {"current": round(rate, 1)}
        committed = baseline.get("metrics", {}).get(name)
        if committed:
            entry["baseline_pre"] = committed["pre"]
            entry["baseline_post"] = committed["post"]
            entry["speedup_vs_pre"] = round(rate / committed["pre"], 2)
            entry["ratio_vs_post"] = round(rate / committed["post"], 2)
        metrics[name] = entry
    return {
        "suite": "bench_kernel",
        "baseline_machine": baseline.get("machine", "unknown"),
        "metrics": metrics,
    }


def check_regression(report: dict, tolerance: float) -> list:
    """Metric names whose events/sec dropped >``tolerance`` vs committed post."""
    failures = []
    for name, entry in report["metrics"].items():
        ratio = entry.get("ratio_vs_post")
        if ratio is not None and ratio < 1.0 - tolerance:
            failures.append(name)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="kernel microbenchmark suite")
    parser.add_argument("--json", default=str(DEFAULT_OUTPUT), metavar="PATH",
                        help="where to write BENCH_kernel.json")
    parser.add_argument("--fast", action="store_true",
                        help="fewer repetitions (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on events/sec regression vs the baseline")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression with --check")
    args = parser.parse_args(argv)

    current = measure_all(fast=args.fast)
    report = build_report(current, load_baseline())

    width = max(len(name) for name in report["metrics"])
    for name, entry in report["metrics"].items():
        line = f"{name:<{width}}  {entry['current']:>12,.0f}/s"
        if "speedup_vs_pre" in entry:
            line += (f"  ({entry['speedup_vs_pre']:.2f}x vs pre-overhaul, "
                     f"{entry['ratio_vs_post']:.2f}x vs committed)")
        print(line)

    out = Path(args.json)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nreport written to {out}")

    if args.check:
        failures = check_regression(report, args.tolerance)
        if failures:
            print(f"PERF REGRESSION (> {args.tolerance:.0%} below committed "
                  f"baseline): {', '.join(failures)}", file=sys.stderr)
            return 1
        print(f"perf check ok (all metrics within {args.tolerance:.0%} "
              "of the committed baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
