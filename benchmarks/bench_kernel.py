"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these track the cost of the hot paths so substrate
regressions are visible next to the figure campaigns.  Four metrics:

* ``scheduler_events_per_sec`` — schedule-and-run cost of plain timer events;
* ``scheduler_churn_ops_per_sec`` — the MAC backoff pattern
  (schedule -> cancel -> reschedule), which exercises lazy deletion and the
  event freelist;
* ``channel_fanout_tx_per_sec`` — per-transmission fan-out cost on an 8-radio
  chain (Signal construction + 2 events per carrier-sense neighbour);
* ``phy_fanout_scalar_tx_per_sec`` / ``phy_fanout_batch_tx_per_sec`` —
  transmit-side fan-out cost proper (event execution excluded) on a dense
  24-radio cluster with an active error model, measured once per execution
  lane; their ratio is the vectorization speedup the ``--check`` lane gate
  enforces (batch >= --lane-ratio x scalar);
* ``full_chain_packets_per_sec`` — end-to-end packets/sec of the standard
  4-hop, 10 s Muzha run.

Two entry points:

* ``python benchmarks/bench_kernel.py`` — runs the suite, prints a table,
  writes ``results/BENCH_kernel.json`` (current numbers next to the committed
  before/after baseline), and with ``--check`` exits non-zero on a >30%
  events/sec regression against the committed post-overhaul baseline, a
  batch lane slower than ``--lane-ratio`` x scalar, or a lane-identity
  violation (the two lanes must produce byte-identical run digests);
* ``pytest benchmarks/bench_kernel.py`` — the same measurements as
  pytest-benchmark cases, marked ``perf`` and excluded from the tier-1 run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict

import pytest

BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "bench_kernel_baseline.json"
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "results" / "BENCH_kernel.json"

pytestmark = pytest.mark.perf


# -- measurement cores (shared by pytest and the standalone runner) ----------


def run_scheduler_throughput(n: int = 50_000) -> int:
    """Schedule-and-run ``n`` timer events; returns the fired count."""
    from repro.sim import EventScheduler

    sched = EventScheduler()
    counter = [0]

    def tick():
        counter[0] += 1

    for i in range(n):
        sched.schedule(i * 1e-5, tick)
    sched.run()
    return counter[0]


def run_scheduler_churn(n: int = 20_000) -> int:
    """The MAC backoff pattern: schedule -> cancel -> reschedule, n times.

    Returns the number of scheduler operations performed (3 per round).
    """
    from repro.sim import EventScheduler

    sched = EventScheduler()
    fired = [0]

    def tick():
        fired[0] += 1

    t = 0.0
    for _ in range(n):
        doomed = sched.schedule(t + 1.0, tick)
        sched.cancel(doomed)
        sched.schedule(t + 1e-5, tick)
        sched.run(max_events=1)
        t = sched.now
    assert fired[0] == n
    return 3 * n


def run_channel_fanout(n_tx: int = 2_000) -> int:
    """Fan ``n_tx`` frames out from the middle of an 8-radio chain."""
    from repro.phy import Position, WirelessChannel
    from repro.phy.radio import Radio
    from repro.sim import Simulator

    sim = Simulator(seed=1)
    channel = WirelessChannel(sim)
    radios = [Radio(sim, i) for i in range(8)]
    for i, radio in enumerate(radios):
        channel.register(radio, Position(200.0 * i, 0.0))

    class Frame:
        size_bytes = 1000

    frame = Frame()
    for _ in range(n_tx):
        channel.transmit(radios[3], frame, 1e-4)
        sim.run(until=sim.now + 1e-3)
    return n_tx


def run_phy_fanout_lane(lane: str, n_tx: int = 1_500, chunk: int = 50):
    """Transmit-side fan-out cost on a dense cluster, for one execution lane.

    48 radios at 10 m spacing put every radio inside every other's
    carrier-sense range (fan-out width 47, well past the batch lane's numpy
    threshold — comparable to the dense cross-topology centre) with a live
    ``UniformBitError`` medium, so the departure trampoline is armed exactly
    as in lossy experiment runs.  Only the ``transmit()`` calls are timed —
    the ~2/3 of wall time spent *executing* the fanned-out events is
    identical machinery for both lanes and would dilute the lane comparison
    to uselessness.

    Noise control: the lane *ratio* gates CI, and both lanes do fixed
    identical-shape work per transmit, so the honest clean-machine estimate
    is the **fastest chunk** of ``chunk`` transmits rather than the run
    mean — an accumulated mean lets one scheduler preemption land in a
    single lane's timed sections and swing the ratio by 1.5x on shared
    runners (observed), while min-of-chunks is stable to ~2%.  Returns
    ``(chunk, best_chunk_seconds)``.
    """
    from repro.phy import Position, UniformBitError, WirelessChannel
    from repro.phy.radio import Radio
    from repro.sim import Simulator

    sim = Simulator(seed=1)
    channel = WirelessChannel(
        sim, error_model=UniformBitError(1e-5), phy_lane=lane
    )
    radios = [Radio(sim, i) for i in range(48)]
    for i, radio in enumerate(radios):
        channel.register(radio, Position(10.0 * i, 0.0))

    class Frame:
        size_bytes = 1460

    frame = Frame()
    src = radios[24]
    transmit = channel.transmit
    perf_counter = time.perf_counter
    # Warm the fan-out caches outside the timed sections.
    transmit(src, frame, 1e-4)
    sim.run(until=sim.now + 1e-3)
    best = float("inf")
    done = 0
    while done < n_tx:
        total = 0.0
        for _ in range(chunk):
            t0 = perf_counter()
            transmit(src, frame, 1e-4)
            total += perf_counter() - t0
            sim.run(until=sim.now + 1e-3)  # drain, untimed
        done += chunk
        best = min(best, total)
    return chunk, best


def lane_identity_digests() -> Dict[str, str]:
    """Result digest of a short lossy full-stack run, per execution lane.

    The byte-identity contract reduced to one number per lane: equal
    digests mean equal event orders, RNG draw sequences and result bytes.
    """
    from repro.experiments import ScenarioConfig, run_chain
    from repro.experiments.config import stable_digest

    digests = {}
    for lane in ("scalar", "batch"):
        config = ScenarioConfig(
            sim_time=2.0, seed=7, window=4, packet_error_rate=0.05,
            phy_lane=lane,
        )
        result = run_chain(3, ["muzha"], config=config)
        digests[lane] = stable_digest(result.to_dict())
    return digests


def run_full_chain() -> int:
    """The standard 4-hop, 10 s Muzha experiment; returns delivered packets."""
    from repro.experiments import ScenarioConfig, run_chain

    result = run_chain(4, ["muzha"], config=ScenarioConfig(sim_time=10.0, seed=1))
    return result.flows[0].delivered_packets


def run_calibration(n: int = 200_000) -> int:
    """Machine-speed reference: pure-stdlib heap churn, independent of repro.

    The observability-overhead gate runs on whatever container CI lands on,
    and container throughput drifts >10% minute-to-minute under neighbour
    load.  This workload (heap push/pop + tuple allocation, the same shape
    as the scheduler hot path) tracks that drift, so ``--check-obs`` can
    compare metric/calibration *ratios* instead of absolute rates.
    """
    import heapq

    heap: list = []
    push = heapq.heappush
    pop = heapq.heappop
    acc = 0
    for i in range(n):
        push(heap, ((i * 2654435761) % 1000003, i))
        if i & 1:
            acc += pop(heap)[1]
    while heap:
        acc += pop(heap)[1]
    assert acc > 0
    return n


def _rate(work: Callable[[], int], reps: int) -> float:
    """Best observed ops/sec over ``reps`` repetitions."""
    best = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        ops = work()
        dt = time.perf_counter() - t0
        best = max(best, ops / dt)
    return best


def _rate_self_timed(work: Callable[[], tuple], reps: int) -> float:
    """Best ops/sec for workloads that time their own hot section.

    ``work`` returns ``(ops, seconds)`` with ``seconds`` covering only the
    code under measurement (the lane benches exclude event execution).
    """
    best = 0.0
    for _ in range(reps):
        ops, dt = work()
        best = max(best, ops / dt)
    return best


def measure_all(fast: bool = False) -> Dict[str, float]:
    """Run the whole suite; returns metric-name -> ops/sec.

    Imports are pulled in and the GC permanent generation frozen before any
    timing starts: the allocation-heavy microbenches otherwise charge every
    collection pass for the size of the imported package, so growing the
    codebase would read as a (phantom) kernel regression.
    """
    import gc

    import repro.experiments  # noqa: F401 — warm the full import graph

    from repro.phy import HAVE_NUMPY

    reps = 2 if fast else 5
    lane_reps = 2 if fast else 3
    gc.freeze()
    try:
        metrics = {
            "calibration_ops_per_sec": _rate(run_calibration, reps),
            "scheduler_events_per_sec": _rate(run_scheduler_throughput, reps),
            "scheduler_churn_ops_per_sec": _rate(run_scheduler_churn, reps),
            "channel_fanout_tx_per_sec": _rate(run_channel_fanout, max(2, reps - 2)),
            "full_chain_packets_per_sec": _rate(run_full_chain, 1 if fast else 2),
        }
        # The two lane benches run back-to-back (not split across the suite):
        # their *ratio* is a CI gate, and adjacency keeps slow container
        # drift out of it.
        metrics["phy_fanout_scalar_tx_per_sec"] = _rate_self_timed(
            lambda: run_phy_fanout_lane("scalar"), lane_reps)
        if HAVE_NUMPY:
            metrics["phy_fanout_batch_tx_per_sec"] = _rate_self_timed(
                lambda: run_phy_fanout_lane("batch"), lane_reps)
        return metrics
    finally:
        gc.unfreeze()


# -- pytest-benchmark cases --------------------------------------------------


def test_scheduler_event_throughput(benchmark):
    """Schedule-and-run cost of 50k timer events."""
    assert benchmark(run_scheduler_throughput) == 50_000


def test_scheduler_churn(benchmark):
    """Lazy-deletion + freelist cost of the MAC backoff pattern."""
    assert benchmark.pedantic(run_scheduler_churn, rounds=3, iterations=1) == 60_000


def test_channel_fanout(benchmark):
    """Per-transmission fan-out cost on an 8-radio chain."""
    assert benchmark.pedantic(run_channel_fanout, rounds=3, iterations=1) == 2_000


def test_mac_exchange_rate(benchmark):
    """Saturated one-hop 802.11 exchange rate (RTS/CTS/DATA/ACK each)."""
    from repro.routing import install_static_routing
    from repro.topology import build_chain
    from repro.traffic import start_ftp

    def campaign():
        net = build_chain(1, seed=1)
        install_static_routing(net.nodes, net.channel)
        flow = start_ftp(net.sim, net.nodes[0], net.nodes[1], variant="newreno", window=8)
        net.sim.run(until=5.0)
        return flow.sink.delivered_packets

    delivered = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert delivered > 200  # ~ >40 packets/s over one hop


def test_phy_fanout_scalar_lane(benchmark):
    """Transmit-side fan-out cost, scalar reference lane."""
    ops, _ = benchmark.pedantic(
        lambda: run_phy_fanout_lane("scalar", n_tx=500), rounds=2, iterations=1
    )
    assert ops == 500


def test_phy_fanout_batch_lane(benchmark):
    """Transmit-side fan-out cost, vectorized batch lane."""
    from repro.phy import HAVE_NUMPY

    if not HAVE_NUMPY:
        pytest.skip("batch lane requires numpy")
    ops, _ = benchmark.pedantic(
        lambda: run_phy_fanout_lane("batch", n_tx=500), rounds=2, iterations=1
    )
    assert ops == 500


def test_full_stack_chain_run(benchmark):
    """End-to-end cost of a standard 4-hop, 10 s Muzha experiment."""
    delivered = benchmark.pedantic(run_full_chain, rounds=1, iterations=1)
    assert delivered > 100


# -- standalone runner -------------------------------------------------------


def load_baseline() -> dict:
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def build_report(current: Dict[str, float], baseline: dict) -> dict:
    """Current numbers alongside the committed before/after baseline."""
    committed_metrics = baseline.get("metrics", {})

    # Machine-speed factor: how fast this box is running *right now* relative
    # to the box/moment the pre_obs column was captured on.  Dividing the
    # pre_obs ratios by it cancels container drift, which routinely exceeds
    # the 5% observability-overhead tolerance.
    speed_factor = None
    cal_committed = committed_metrics.get("calibration_ops_per_sec", {}).get("pre_obs")
    cal_current = current.get("calibration_ops_per_sec")
    if cal_committed and cal_current:
        speed_factor = cal_current / cal_committed

    metrics = {}
    for name, rate in current.items():
        entry = {"current": round(rate, 1)}
        committed = committed_metrics.get(name, {})
        if "pre" in committed and "post" in committed:
            entry["baseline_pre"] = committed["pre"]
            entry["baseline_post"] = committed["post"]
            entry["speedup_vs_pre"] = round(rate / committed["pre"], 2)
            entry["ratio_vs_post"] = round(rate / committed["post"], 2)
            if speed_factor:
                entry["ratio_vs_post_normalized"] = round(
                    rate / committed["post"] / speed_factor, 3)
        pre_obs = committed.get("pre_obs")
        if pre_obs:
            entry["baseline_pre_obs"] = pre_obs
            entry["ratio_vs_pre_obs"] = round(rate / pre_obs, 3)
            if speed_factor and name != "calibration_ops_per_sec":
                entry["ratio_vs_pre_obs_normalized"] = round(
                    rate / pre_obs / speed_factor, 3)
        metrics[name] = entry
    report = {
        "suite": "bench_kernel",
        "baseline_machine": baseline.get("machine", "unknown"),
        "metrics": metrics,
    }
    if speed_factor is not None:
        report["machine_speed_factor"] = round(speed_factor, 3)
    return report


def check_regression(report: dict, tolerance: float, against: str = "post") -> list:
    """Metric names whose events/sec dropped >``tolerance`` vs the committed
    ``post`` (cross-machine, generous tolerance) or ``pre_obs``
    (observability-overhead gate) baseline column.

    The pre_obs comparison uses the calibration-normalized ratio when one is
    available, so the tight 5% gate measures code overhead rather than how
    loaded the container happens to be.
    """
    failures = []
    for name, entry in report["metrics"].items():
        if name == "calibration_ops_per_sec":
            continue
        ratio = entry.get(f"ratio_vs_{against}_normalized",
                          entry.get(f"ratio_vs_{against}"))
        if ratio is not None and ratio < 1.0 - tolerance:
            failures.append(name)
    return failures


def check_lanes(report: dict, lane_ratio: float) -> list:
    """The vectorization gates: lane speedup and lane byte-identity.

    Returns a list of human-readable failure strings (empty = pass).  Both
    gates are skipped when numpy is absent — there is only one lane then.
    """
    from repro.phy import HAVE_NUMPY

    if not HAVE_NUMPY:
        return []
    failures = []
    metrics = report["metrics"]
    scalar = metrics.get("phy_fanout_scalar_tx_per_sec", {}).get("current")
    batch = metrics.get("phy_fanout_batch_tx_per_sec", {}).get("current")
    if scalar and batch:
        ratio = batch / scalar
        report["lane_speedup"] = round(ratio, 2)
        if ratio < lane_ratio:
            failures.append(
                f"batch lane only {ratio:.2f}x scalar on the fan-out bench "
                f"(gate: >= {lane_ratio:.2f}x)"
            )
    digests = lane_identity_digests()
    report["lane_identity"] = digests
    if digests["scalar"] != digests["batch"]:
        failures.append(
            "LANE IDENTITY VIOLATION: scalar and batch lanes produced "
            f"different run digests ({digests['scalar'][:12]}… vs "
            f"{digests['batch'][:12]}…)"
        )
    return failures


#: Metric -> (measurement fn, repetitions) for targeted re-measurement.
_BENCH_FNS = {
    "scheduler_events_per_sec": (run_scheduler_throughput, 5),
    "scheduler_churn_ops_per_sec": (run_scheduler_churn, 5),
    "channel_fanout_tx_per_sec": (run_channel_fanout, 3),
    "full_chain_packets_per_sec": (run_full_chain, 2),
}


def check_obs_with_retry(report: dict, baseline: dict, tolerance: float,
                         retries: int = 3) -> list:
    """The observability-overhead gate with noise-rejecting retries.

    Container throughput jumps several percent between back-to-back runs even
    after calibration normalization, so a failing metric is re-measured (with
    a fresh calibration anchor) up to ``retries`` times and passes if any
    attempt clears the tolerance.  Genuine overhead fails every attempt;
    scheduler noise does not.
    """
    import gc

    failures = check_regression(report, tolerance, against="pre_obs")
    committed = baseline.get("metrics", {})
    pre_obs_cal = committed.get("calibration_ops_per_sec", {}).get("pre_obs")
    for _ in range(retries):
        if not failures:
            break
        gc.freeze()
        try:
            speed = 1.0
            if pre_obs_cal:
                speed = _rate(run_calibration, 5) / pre_obs_cal
            still = []
            for name in failures:
                fn, reps = _BENCH_FNS[name]
                pre_obs = committed.get(name, {}).get("pre_obs")
                if not pre_obs:
                    continue
                ratio = _rate(fn, reps) / pre_obs / speed
                entry = report["metrics"][name]
                entry.setdefault("obs_retry_ratios", []).append(round(ratio, 3))
                if ratio < 1.0 - tolerance:
                    still.append(name)
            failures = still
        finally:
            gc.unfreeze()
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="kernel microbenchmark suite")
    parser.add_argument("--json", default=str(DEFAULT_OUTPUT), metavar="PATH",
                        help="where to write BENCH_kernel.json")
    parser.add_argument("--fast", action="store_true",
                        help="fewer repetitions (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on events/sec regression vs the baseline")
    parser.add_argument("--check-obs", action="store_true",
                        help="exit 1 if an untraced run is more than "
                             "--obs-tolerance below the committed pre-"
                             "observability (same-machine) baseline — the "
                             "<5%% observability-overhead gate")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression with --check")
    parser.add_argument("--lane-ratio", type=float, default=1.5,
                        help="minimum batch/scalar fan-out speedup required "
                             "by --check (numpy installs only)")
    parser.add_argument("--obs-tolerance", type=float, default=0.05,
                        help="allowed fractional regression with --check-obs")
    args = parser.parse_args(argv)

    baseline = load_baseline()
    current = measure_all(fast=args.fast)
    report = build_report(current, baseline)

    width = max(len(name) for name in report["metrics"])
    for name, entry in report["metrics"].items():
        line = f"{name:<{width}}  {entry['current']:>12,.0f}/s"
        if "speedup_vs_pre" in entry:
            line += (f"  ({entry['speedup_vs_pre']:.2f}x vs pre-overhaul, "
                     f"{entry['ratio_vs_post']:.2f}x vs committed)")
        print(line)

    out = Path(args.json)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nreport written to {out}")

    if args.check:
        failures = check_regression(report, args.tolerance)
        if failures:
            print(f"PERF REGRESSION (> {args.tolerance:.0%} below committed "
                  f"baseline): {', '.join(failures)}", file=sys.stderr)
            return 1
        print(f"perf check ok (all metrics within {args.tolerance:.0%} "
              "of the committed baseline)")
        lane_failures = check_lanes(report, args.lane_ratio)
        with open(out, "w") as handle:  # include lane speedup + digests
            json.dump(report, handle, indent=2)
            handle.write("\n")
        if lane_failures:
            for failure in lane_failures:
                print(f"LANE CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        if "lane_speedup" in report:
            print(f"lane check ok (batch {report['lane_speedup']:.2f}x "
                  f"scalar, identical run digests)")
        else:
            print("lane check skipped (numpy not installed; scalar lane only)")
    if args.check_obs:
        failures = check_obs_with_retry(report, baseline, args.obs_tolerance)
        with open(out, "w") as handle:  # include any retry ratios
            json.dump(report, handle, indent=2)
            handle.write("\n")
        if failures:
            print(f"OBSERVABILITY OVERHEAD (> {args.obs_tolerance:.0%} below "
                  f"the pre-observability baseline, calibration-normalized, "
                  f"after retries): {', '.join(failures)}",
                  file=sys.stderr)
            return 1
        print(f"observability-overhead check ok (all metrics within "
              f"{args.obs_tolerance:.0%} of the pre-observability baseline, "
              f"calibration-normalized)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
