"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's own figures:

* **Binary vs multi-level feedback** (paper §4.6's argument against
  ECN-style one-bit feedback): a Muzha sender fed by the binary DRAI never
  receives the "stabilizing" level, so its window see-saws; the five-level
  DRAI holds the window steadier and delivers at least as much.
* **Random-loss marking on/off** (paper §4.7): with per-frame random loss,
  disabling the marked/unmarked dupACK classification forces window halving
  on every loss indication; full Muzha should deliver more.
* **DRAI threshold sensitivity**: sweeping the fuzzy queue thresholds
  shows the published-level distribution shifting, while goodput stays in a
  healthy band (the mechanism is robust, not knife-edge tuned).
* **RED vs drop-tail IFQ** (related-work baseline).
"""

from __future__ import annotations

import statistics

import pytest

from repro.core import BinaryFeedbackDrai, DraiParams, install_drai
from repro.experiments import ScenarioConfig, full_scale, run_chain
from repro.net.queues import RedQueue
from repro.routing import install_aodv_routing
from repro.stats.timeseries import time_average
from repro.topology import build_chain
from repro.traffic import start_ftp

from conftest import banner, run_once

SEEDS = (1, 2, 3, 4, 5) if full_scale() else (1, 2, 3)
SIM_TIME = 30.0 if full_scale() else 15.0


def _muzha_run(seed, estimator_cls=None, drai_params=None, error_rate=0.0, hops=4):
    """One Muzha chain run with a configurable DRAI estimator."""
    from repro.phy import PacketErrorRate

    net = build_chain(
        hops,
        seed=seed,
        error_model=PacketErrorRate(error_rate) if error_rate else None,
    )
    install_aodv_routing(net.nodes, net.sim)
    kwargs = {"params": drai_params}
    if estimator_cls is not None:
        kwargs["estimator_cls"] = estimator_cls
    install_drai(net.nodes, net.sim, **kwargs)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="muzha", window=8)
    net.sim.run(until=SIM_TIME)
    return flow


def test_ablation_binary_vs_multilevel_feedback(benchmark):
    def campaign():
        rows = []
        for name, estimator in [("multi-level", None), ("binary", BinaryFeedbackDrai)]:
            goodputs, wobble = [], []
            for seed in SEEDS:
                flow = _muzha_run(seed, estimator_cls=estimator)
                goodputs.append(flow.goodput_kbps(SIM_TIME))
                # window restlessness: cwnd changes per second after ramp
                changes = sum(1 for t, _ in flow.sender.cwnd_trace if t > 2.0)
                wobble.append(changes / (SIM_TIME - 2.0))
            rows.append((name, statistics.mean(goodputs), statistics.mean(wobble)))
        return rows

    rows = run_once(benchmark, campaign)
    banner("Ablation — multi-level DRAI vs binary (ECN-style) feedback")
    for name, goodput, wobble in rows:
        print(f"{name:>12s}: goodput={goodput:7.1f} kbps  cwnd changes/s={wobble:5.2f}")
    multi, binary = rows[0], rows[1]
    assert multi[2] <= binary[2], "five levels must yield a steadier window"
    assert multi[1] >= 0.9 * binary[1]


def test_ablation_random_loss_marking(benchmark):
    def campaign():
        results = {}
        for variant in ("muzha", "muzha-nomark", "newreno"):
            goodputs = []
            for seed in SEEDS:
                config = ScenarioConfig(
                    sim_time=SIM_TIME, seed=seed, window=8, packet_error_rate=0.03
                )
                run = run_chain(4, [variant], config=config)
                goodputs.append(run.flows[0].goodput_kbps)
            results[variant] = statistics.mean(goodputs)
        return results

    results = run_once(benchmark, campaign)
    banner("Ablation — §4.7 random-loss marking under 3% frame loss")
    for variant, goodput in results.items():
        print(f"{variant:>14s}: {goodput:7.1f} kbps")
    assert results["muzha"] >= results["muzha-nomark"] * 0.95, (
        "loss classification must not hurt Muzha under random loss"
    )
    assert results["muzha"] > results["newreno"], (
        "under random loss, Muzha must beat the loss-halving baseline"
    )


def test_ablation_drai_threshold_sensitivity(benchmark):
    """Sweep the *binding* DRAI constraint on a single-flow chain: the
    medium-saturation ("hold") thresholds.  Disabling them hands control to
    the queue rules and the standing window drifts up; tightening them pins
    the window at the chain's tiny optimum.  Throughput must stay healthy
    across the sweep (the mechanism is robust, not knife-edge tuned)."""

    def campaign():
        settings = {
            "conservative": DraiParams(util_high_lo=0.55, util_high_hi=0.70),
            "default": DraiParams(),
            "disabled": DraiParams(util_high_lo=1.1, util_high_hi=1.2),
        }
        rows = []
        for name, params in settings.items():
            goodputs, mean_cwnds = [], []
            for seed in SEEDS:
                flow = _muzha_run(seed, drai_params=params)
                goodputs.append(flow.goodput_kbps(SIM_TIME))
                mean_cwnds.append(
                    time_average(flow.sender.cwnd_trace, 1.0, SIM_TIME)
                )
            rows.append(
                (name, statistics.mean(goodputs), statistics.mean(mean_cwnds))
            )
        return rows

    rows = run_once(benchmark, campaign)
    banner("Ablation — DRAI medium-saturation threshold sensitivity")
    for name, goodput, cwnd in rows:
        print(f"{name:>12s}: goodput={goodput:7.1f} kbps  mean cwnd={cwnd:5.2f}")
    cwnds = {name: cwnd for name, _, cwnd in rows}
    assert cwnds["default"] <= cwnds["disabled"], (
        "removing the saturation hold must admit a larger standing window"
    )
    for name, goodput, _ in rows:
        assert goodput > 100.0, f"{name} thresholds collapsed throughput"


def test_ablation_red_vs_droptail_ifq(benchmark):
    def campaign():
        results = {}
        for queue_kind in ("droptail", "red"):
            goodputs = []
            for seed in SEEDS:
                net = build_chain(4, seed=seed)
                if queue_kind == "red":
                    for node in net.nodes:
                        red = RedQueue(50, rng=net.sim.stream(f"red.{node.node_id}"))
                        red.on_wakeup = node.mac.wakeup
                        node.ifq = red
                        node.mac.queue = red
                install_aodv_routing(net.nodes, net.sim)
                flow = start_ftp(
                    net.sim, net.nodes[0], net.nodes[-1], variant="newreno", window=8
                )
                net.sim.run(until=SIM_TIME)
                goodputs.append(flow.goodput_kbps(SIM_TIME))
            results[queue_kind] = statistics.mean(goodputs)
        return results

    results = run_once(benchmark, campaign)
    banner("Ablation — RED vs drop-tail IFQ under NewReno")
    for kind, goodput in results.items():
        print(f"{kind:>9s}: {goodput:7.1f} kbps")
    for kind, goodput in results.items():
        assert goodput > 50.0, f"{kind} IFQ broke the flow"
