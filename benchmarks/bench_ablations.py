"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's own figures:

* **Binary vs multi-level feedback** (paper §4.6's argument against
  ECN-style one-bit feedback): a Muzha sender fed by the binary DRAI never
  receives the "stabilizing" level, so its window see-saws; the five-level
  DRAI holds the window steadier and delivers at least as much.
* **Random-loss marking on/off** (paper §4.7): with per-frame random loss,
  disabling the marked/unmarked dupACK classification forces window halving
  on every loss indication; full Muzha should deliver more.
* **DRAI threshold sensitivity**: sweeping the fuzzy queue thresholds
  shows the published-level distribution shifting, while goodput stays in a
  healthy band (the mechanism is robust, not knife-edge tuned).
* **RED vs drop-tail IFQ** (related-work baseline).
* **Router-advice policy bake-off** (``--policies`` CLI below): every
  registered advice policy across static, mobile, and fault-plan scenario
  classes, emitting ``results/BENCH_policies.json``.
"""

from __future__ import annotations

import statistics

import pytest

from repro.core import BinaryFeedbackDrai, DraiParams, install_drai
from repro.experiments import ScenarioConfig, full_scale, run_chain
from repro.net.queues import RedQueue
from repro.routing import install_aodv_routing
from repro.stats.fairness import jain_index
from repro.stats.timeseries import time_average
from repro.topology import build_chain
from repro.traffic import start_ftp

from conftest import banner, run_once

SEEDS = (1, 2, 3, 4, 5) if full_scale() else (1, 2, 3)
SIM_TIME = 30.0 if full_scale() else 15.0


def _muzha_run(seed, estimator_cls=None, drai_params=None, error_rate=0.0, hops=4):
    """One Muzha chain run with a configurable DRAI estimator."""
    from repro.phy import PacketErrorRate

    net = build_chain(
        hops,
        seed=seed,
        error_model=PacketErrorRate(error_rate) if error_rate else None,
    )
    install_aodv_routing(net.nodes, net.sim)
    kwargs = {"params": drai_params}
    if estimator_cls is not None:
        kwargs["estimator_cls"] = estimator_cls
    install_drai(net.nodes, net.sim, **kwargs)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="muzha", window=8)
    net.sim.run(until=SIM_TIME)
    return flow


def test_ablation_binary_vs_multilevel_feedback(benchmark):
    def campaign():
        rows = []
        for name, estimator in [("multi-level", None), ("binary", BinaryFeedbackDrai)]:
            goodputs, wobble = [], []
            for seed in SEEDS:
                flow = _muzha_run(seed, estimator_cls=estimator)
                goodputs.append(flow.goodput_kbps(SIM_TIME))
                # window restlessness: cwnd changes per second after ramp
                changes = sum(1 for t, _ in flow.sender.cwnd_trace if t > 2.0)
                wobble.append(changes / (SIM_TIME - 2.0))
            rows.append((name, statistics.mean(goodputs), statistics.mean(wobble)))
        return rows

    rows = run_once(benchmark, campaign)
    banner("Ablation — multi-level DRAI vs binary (ECN-style) feedback")
    for name, goodput, wobble in rows:
        print(f"{name:>12s}: goodput={goodput:7.1f} kbps  cwnd changes/s={wobble:5.2f}")
    multi, binary = rows[0], rows[1]
    assert multi[2] <= binary[2], "five levels must yield a steadier window"
    assert multi[1] >= 0.9 * binary[1]


def test_ablation_random_loss_marking(benchmark):
    def campaign():
        results = {}
        for variant in ("muzha", "muzha-nomark", "newreno"):
            goodputs = []
            for seed in SEEDS:
                config = ScenarioConfig(
                    sim_time=SIM_TIME, seed=seed, window=8, packet_error_rate=0.03
                )
                run = run_chain(4, [variant], config=config)
                goodputs.append(run.flows[0].goodput_kbps)
            results[variant] = statistics.mean(goodputs)
        return results

    results = run_once(benchmark, campaign)
    banner("Ablation — §4.7 random-loss marking under 3% frame loss")
    for variant, goodput in results.items():
        print(f"{variant:>14s}: {goodput:7.1f} kbps")
    assert results["muzha"] >= results["muzha-nomark"] * 0.95, (
        "loss classification must not hurt Muzha under random loss"
    )
    assert results["muzha"] > results["newreno"], (
        "under random loss, Muzha must beat the loss-halving baseline"
    )


def test_ablation_drai_threshold_sensitivity(benchmark):
    """Sweep the *binding* DRAI constraint on a single-flow chain: the
    medium-saturation ("hold") thresholds.  Disabling them hands control to
    the queue rules and the standing window drifts up; tightening them pins
    the window at the chain's tiny optimum.  Throughput must stay healthy
    across the sweep (the mechanism is robust, not knife-edge tuned)."""

    def campaign():
        settings = {
            "conservative": DraiParams(util_high_lo=0.55, util_high_hi=0.70),
            "default": DraiParams(),
            "disabled": DraiParams(util_high_lo=1.1, util_high_hi=1.2),
        }
        rows = []
        for name, params in settings.items():
            goodputs, mean_cwnds = [], []
            for seed in SEEDS:
                flow = _muzha_run(seed, drai_params=params)
                goodputs.append(flow.goodput_kbps(SIM_TIME))
                mean_cwnds.append(
                    time_average(flow.sender.cwnd_trace, 1.0, SIM_TIME)
                )
            rows.append(
                (name, statistics.mean(goodputs), statistics.mean(mean_cwnds))
            )
        return rows

    rows = run_once(benchmark, campaign)
    banner("Ablation — DRAI medium-saturation threshold sensitivity")
    for name, goodput, cwnd in rows:
        print(f"{name:>12s}: goodput={goodput:7.1f} kbps  mean cwnd={cwnd:5.2f}")
    cwnds = {name: cwnd for name, _, cwnd in rows}
    assert cwnds["default"] <= cwnds["disabled"], (
        "removing the saturation hold must admit a larger standing window"
    )
    for name, goodput, _ in rows:
        assert goodput > 100.0, f"{name} thresholds collapsed throughput"


def test_ablation_red_vs_droptail_ifq(benchmark):
    def campaign():
        results = {}
        for queue_kind in ("droptail", "red"):
            goodputs = []
            for seed in SEEDS:
                net = build_chain(4, seed=seed)
                if queue_kind == "red":
                    for node in net.nodes:
                        red = RedQueue(50, rng=net.sim.stream(f"red.{node.node_id}"))
                        red.on_wakeup = node.mac.wakeup
                        node.ifq = red
                        node.mac.queue = red
                install_aodv_routing(net.nodes, net.sim)
                flow = start_ftp(
                    net.sim, net.nodes[0], net.nodes[-1], variant="newreno", window=8
                )
                net.sim.run(until=SIM_TIME)
                goodputs.append(flow.goodput_kbps(SIM_TIME))
            results[queue_kind] = statistics.mean(goodputs)
        return results

    results = run_once(benchmark, campaign)
    banner("Ablation — RED vs drop-tail IFQ under NewReno")
    for kind, goodput in results.items():
        print(f"{kind:>9s}: {goodput:7.1f} kbps")
    for kind, goodput in results.items():
        assert goodput > 50.0, f"{kind} IFQ broke the flow"


# ---------------------------------------------------------------------------
# Router-advice policy bake-off
#
# Runs every requested advice policy through three scenario classes (a
# static 2-flow chain, a mobile random-waypoint field, and a chain under a
# relay-crash fault plan) and reports goodput, Jain fairness, TCP
# retransmissions, and the controller's time-in-state split.  Invoked as
#
#     PYTHONPATH=src python benchmarks/bench_ablations.py --policies
#
# which (re)generates results/BENCH_policies.json; ``--quick`` shrinks the
# grid for CI smoke runs and ``--policy-names``/``--scenarios`` subset it.

BAKEOFF_POLICIES = ("fuzzy", "binary-feedback", "queue-trend", "hysteresis")
BAKEOFF_SCENARIOS = ("static", "mobile", "fault")
DRAI_SAMPLE_INTERVAL = DraiParams().sample_interval


def _time_in_state(counters):
    """Fold ``drai.state_samples`` label series into seconds per state."""
    seconds = {}
    for label, samples in counters.get("drai.state_samples", {}).items():
        fields = dict(part.split("=", 1) for part in label.split(","))
        state = fields["state"]
        seconds[state] = seconds.get(state, 0.0) + samples * DRAI_SAMPLE_INTERVAL
    return {state: round(seconds[state], 3) for state in sorted(seconds)}


def _bakeoff_static(policy, seed, sim_time):
    """Two Muzha flows sharing a 3-hop chain: the fairness scenario."""
    config = ScenarioConfig(sim_time=sim_time, seed=seed, window=8, policy=policy)
    result = run_chain(3, ["muzha", "muzha"], config=config)
    return result.to_dict()


def _bakeoff_fault(policy, seed, sim_time):
    """A 3-hop chain whose middle relay crashes mid-transfer."""
    from repro.faults import FaultEvent, FaultPlan

    plan = FaultPlan(events=(
        FaultEvent(time=sim_time / 3.0, kind="node_crash", node=1,
                   duration=sim_time / 6.0),
    ))
    config = ScenarioConfig(
        sim_time=sim_time, seed=seed, window=8, policy=policy, faults=plan
    )
    result = run_chain(3, ["muzha"], config=config)
    return result.to_dict()


def _bakeoff_mobile(policy, seed, sim_time):
    """A roaming random-waypoint field with one corner-to-corner flow."""
    from repro.obs.metrics import collect_network_metrics
    from repro.phy import Area, Position, RandomWaypointMobility
    from repro.topology import make_network

    side = 700.0
    net = make_network(seed=seed)
    rng = net.sim.stream("placement")
    for _ in range(12):
        net.add_node(Position(rng.uniform(0, side), rng.uniform(0, side)))
    install_aodv_routing(net.nodes, net.sim)
    install_drai(net.nodes, net.sim, policy=policy)
    RandomWaypointMobility(
        net.sim,
        net.channel,
        [n.radio for n in net.nodes],
        Area(0.0, 0.0, side, side),
        speed_range=(2.0, 10.0),
        pause_time=1.0,
    ).start()
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant="muzha", window=8)
    net.sim.run(until=sim_time)
    snapshot = collect_network_metrics(net, [flow]).snapshot()
    return {
        "flows": [{
            "goodput_kbps": flow.goodput_kbps(sim_time),
            "retransmits": flow.sender.stats.retransmits,
        }],
        "metrics": snapshot,
    }


_BAKEOFF_RUNNERS = {
    "static": _bakeoff_static,
    "mobile": _bakeoff_mobile,
    "fault": _bakeoff_fault,
}


def _bakeoff_cell(policy, scenario, seeds, sim_time):
    """Average one (policy, scenario) cell over ``seeds``."""
    goodputs, fairness, retransmits, states = [], [], [], {}
    for seed in seeds:
        run = _BAKEOFF_RUNNERS[scenario](policy, seed, sim_time)
        flows = run["flows"]
        goodputs.append(sum(f["goodput_kbps"] for f in flows))
        fairness.append(jain_index([f["goodput_kbps"] for f in flows]))
        retransmits.append(sum(f["retransmits"] for f in flows))
        for state, secs in _time_in_state(run["metrics"]["counters"]).items():
            states[state] = states.get(state, 0.0) + secs
    n = float(len(seeds))
    return {
        "policy": policy,
        "scenario": scenario,
        "goodput_kbps": round(statistics.mean(goodputs), 2),
        "fairness": round(statistics.mean(fairness), 4),
        "retransmits": round(statistics.mean(retransmits), 2),
        "time_in_state_s": {s: round(v / n, 3) for s, v in sorted(states.items())},
    }


def run_policy_bakeoff(policies=BAKEOFF_POLICIES, scenarios=BAKEOFF_SCENARIOS,
                       seeds=SEEDS, sim_time=None):
    sim_time = SIM_TIME if sim_time is None else sim_time
    cells = [
        _bakeoff_cell(policy, scenario, seeds, sim_time)
        for policy in policies
        for scenario in scenarios
    ]
    return {
        "suite": "bench_ablations --policies",
        "sim_time": sim_time,
        "seeds": list(seeds),
        "sample_interval_s": DRAI_SAMPLE_INTERVAL,
        "policies": list(policies),
        "scenarios": list(scenarios),
        "cells": cells,
    }


def _policies_main(argv=None):
    import argparse
    import json
    from pathlib import Path

    parser = argparse.ArgumentParser(
        description="Router-advice policy bake-off (see module docstring)."
    )
    parser.add_argument("--policies", action="store_true", required=True,
                        help="run the policy bake-off")
    parser.add_argument("--quick", action="store_true",
                        help="one seed, short runs (CI smoke)")
    parser.add_argument("--policy-names", default=",".join(BAKEOFF_POLICIES),
                        help="comma-separated subset of policies")
    parser.add_argument("--scenarios", default=",".join(BAKEOFF_SCENARIOS),
                        help="comma-separated subset of scenario classes")
    parser.add_argument("--out", default=None,
                        help="output path (default results/BENCH_policies.json)")
    args = parser.parse_args(argv)

    policies = tuple(p for p in args.policy_names.split(",") if p)
    scenarios = tuple(s for s in args.scenarios.split(",") if s)
    seeds = (1,) if args.quick else SEEDS
    sim_time = 4.0 if args.quick else SIM_TIME
    report = run_policy_bakeoff(policies, scenarios, seeds, sim_time)

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "results" / "BENCH_policies.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")

    banner("Policy bake-off — goodput / fairness / retx / time-in-state")
    for cell in report["cells"]:
        states = " ".join(
            f"{s}={v:.1f}s" for s, v in cell["time_in_state_s"].items()
        )
        print(
            f"{cell['policy']:>15s} x {cell['scenario']:<7s}"
            f" goodput={cell['goodput_kbps']:8.1f} kbps"
            f" fairness={cell['fairness']:.3f}"
            f" retx={cell['retransmits']:6.1f}  {states}"
        )
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_policies_main())
