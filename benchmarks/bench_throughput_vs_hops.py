"""Figures 5.8–5.10: throughput vs number of hops per advertised window.

For each ``window_`` in {4, 8, 32}, sweep the chain length and print one
row per hop count with all four protocols' goodputs — the same series the
paper plots.  Shape assertions:

* throughput decreases with hop count for every protocol;
* Muzha's aggregate goodput is at least competitive with (and typically
  above) NewReno's, the paper's +5–10% headline.
"""

from __future__ import annotations

import pytest

from repro.experiments import export_sweep_csv, format_sweep

from conftest import banner, figures_dir, run_once


def _assert_shapes(sweep):
    hops = list(sweep.hops)
    for variant in sweep.variants:
        series = dict(sweep.goodput_series(variant))
        # Monotone decreasing across a 2x hop increase (with 10% slack for
        # seed noise on neighbouring grid points).
        assert series[hops[0]] > series[hops[-1]] * 1.1, (
            f"{variant}: throughput should fall with hops: {series}"
        )
    muzha_total = sum(v for _, v in sweep.goodput_series("muzha"))
    newreno_total = sum(v for _, v in sweep.goodput_series("newreno"))
    assert muzha_total >= 0.95 * newreno_total, (
        f"Muzha aggregate goodput {muzha_total:.0f} should be >= ~NewReno's "
        f"{newreno_total:.0f}"
    )


@pytest.mark.parametrize("window", [4, 8, 32])
def test_fig5_8_to_10_throughput_vs_hops(benchmark, sweep_for_window, window):
    sweep = run_once(benchmark, lambda: sweep_for_window(window))
    figure = {4: "5.8", 8: "5.9", 32: "5.10"}[window]
    banner(f"Fig {figure} — Throughput vs. number of hops (window_={window})")
    print(format_sweep(sweep, metric="goodput"))
    csv_path = export_sweep_csv(sweep, figures_dir() / f"fig{figure}_sweep_w{window}.csv")
    print(f"[csv: {csv_path}]")
    _assert_shapes(sweep)
