"""Campaign engine benchmarks: parallel speedup and warm-cache latency.

Not a paper figure — these measure the batch engine the figure campaigns
run on.  Three claims are exercised:

* fanning a grid over 4 workers beats serial execution (>=2x on a 4-core
  host; skipped where the hardware cannot show it);
* worker count never changes the metrics (bit-identical fingerprints);
* a warm cache answers the whole campaign without simulating at all.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments import (
    CampaignCache,
    ScenarioConfig,
    chain_grid,
    run_campaign,
)
from repro.experiments.config import full_scale

from conftest import banner, run_once

#: >= 8 scenarios so a 4-way pool always has work for every worker.
GRID_HOPS = (2, 3, 4, 5)
GRID_VARIANTS = ("muzha", "newreno")
SIM_TIME = 8.0 if full_scale() else 3.0


def _grid():
    return chain_grid(
        GRID_VARIANTS, GRID_HOPS,
        config=ScenarioConfig(sim_time=SIM_TIME, window=4),
    )


def test_campaign_parallel_speedup(benchmark):
    """Serial vs 4-worker wall clock on an 8-scenario grid."""
    grid = _grid()

    serial_start = time.perf_counter()
    serial = run_campaign(grid, jobs=1)
    serial_elapsed = time.perf_counter() - serial_start

    parallel_start = time.perf_counter()
    parallel = run_once(benchmark, lambda: run_campaign(grid, jobs=4))
    parallel_elapsed = time.perf_counter() - parallel_start

    speedup = serial_elapsed / max(parallel_elapsed, 1e-9)
    banner("campaign engine — serial vs 4 workers")
    print(f"grid           : {len(grid)} scenarios x {SIM_TIME:g}s")
    print(f"serial (jobs=1): {serial_elapsed:6.2f}s")
    print(f"pool  (jobs=4) : {parallel_elapsed:6.2f}s")
    print(f"speedup        : {speedup:5.2f}x on {os.cpu_count()} cores")

    assert parallel.fingerprint() == serial.fingerprint(), (
        "worker count changed the campaign's metrics"
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, f"expected >=2x on >=4 cores, got {speedup:.2f}x"
    elif (os.cpu_count() or 1) < 2:
        pytest.skip(f"speedup not measurable on {os.cpu_count()} core(s)")


def test_campaign_warm_cache_executes_nothing(benchmark, tmp_path):
    """A warm cache must answer the grid with zero simulations, fast."""
    grid = _grid()
    cache = CampaignCache(tmp_path / "cache")
    cold = run_campaign(grid, jobs=1, cache=cache)
    assert cold.executed == len(grid)

    warm_start = time.perf_counter()
    warm = run_once(benchmark, lambda: run_campaign(grid, jobs=1, cache=cache))
    warm_elapsed = time.perf_counter() - warm_start

    banner("campaign engine — warm cache")
    print(f"cold: {cold.executed} simulated; warm: {warm.executed} simulated "
          f"in {warm_elapsed * 1e3:.1f} ms")
    assert warm.executed == 0
    assert warm.cache_hits == len(grid)
    assert warm.fingerprint() == cold.fingerprint()
