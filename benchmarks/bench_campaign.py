"""Campaign engine benchmarks: pool-mode throughput and warm-cache latency.

Not a paper figure — these measure the batch engine the figure campaigns
run on.  Four metrics:

* ``campaign_scenarios_per_sec`` — units/sec of the default ``warm``
  persistent-worker pool on a 48-unit uncached grid of deliberately short
  simulations.  Short units make the measurement engine-dominated: it
  tracks dispatch/IPC/fork overhead, which is what the campaign engine
  owns, rather than simulator speed (``bench_kernel`` owns that);
* ``campaign_scenarios_per_sec_per_attempt`` — the same grid through the
  fork-per-attempt fallback backend.  The committed warm-vs-per-attempt
  ratio is the documented payoff of the persistent pool (one fork per
  worker instead of one per unit);
* ``full_run_packets_per_sec`` — delivered packets per wall-clock second
  of the standard 4-hop, 10 s Muzha run, the end-to-end anchor for the
  allocation-churn work (``__slots__`` packet/segment/frame types, interned
  control frames, memoized PHY timings);
* ``calibration_ops_per_sec`` — the machine-speed reference shared with
  ``bench_kernel``, so regression checks can compare calibration-normalized
  ratios instead of absolute rates on drifting CI containers.

Two entry points:

* ``python benchmarks/bench_campaign.py`` — runs the suite, prints a
  table, writes ``results/BENCH_campaign.json``, and with ``--check``
  exits non-zero on a >30% (calibration-normalized) regression against the
  committed baseline;
* ``pytest benchmarks/bench_campaign.py`` — the same claims as
  pytest-benchmark cases, marked ``perf`` and excluded from tier-1.

Every mode comparison also asserts byte-identical campaign fingerprints:
a faster backend that changed the numbers would be a bug, not a win.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Tuple

import pytest

from repro.experiments import (
    CampaignCache,
    ScenarioConfig,
    chain_grid,
    run_campaign,
    run_chain,
)
from repro.experiments.config import full_scale

BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "bench_campaign_baseline.json"
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "results" / "BENCH_campaign.json"

pytestmark = pytest.mark.perf

#: >= 8 scenarios so a 4-way pool always has work for every worker.
GRID_HOPS = (2, 3, 4, 5)
GRID_VARIANTS = ("muzha", "newreno")
SIM_TIME = 8.0 if full_scale() else 3.0

#: The engine-overhead grid: 6 scenarios x 8 replications = 48 units of
#: 0.1 s simulations.  Units this short put the campaign engine itself on
#: the critical path, which is the point — fork/dispatch/IPC amortization
#: is invisible behind multi-second simulations.
ENGINE_HOPS = (2, 3, 4)
ENGINE_REPLICATIONS = 8
ENGINE_SIM_TIME = 0.1
#: Forced worker count: the engine comparison is about per-unit overhead,
#: not hardware parallelism, so it does not scale with ``os.cpu_count()``.
ENGINE_JOBS = 4


def _grid():
    return chain_grid(
        GRID_VARIANTS, GRID_HOPS,
        config=ScenarioConfig(sim_time=SIM_TIME, window=4),
    )


def _engine_grid():
    return chain_grid(
        GRID_VARIANTS, ENGINE_HOPS,
        config=ScenarioConfig(sim_time=ENGINE_SIM_TIME, window=4),
    )


# -- measurement cores (shared by pytest and the standalone runner) ----------


def run_engine_campaign(pool_mode: str) -> Tuple[int, str]:
    """One uncached 48-unit campaign; returns (units, fingerprint)."""
    grid = _engine_grid()
    result = run_campaign(
        grid, replications=ENGINE_REPLICATIONS, jobs=ENGINE_JOBS,
        pool_mode=pool_mode,
    )
    assert result.complete
    return len(grid) * ENGINE_REPLICATIONS, result.fingerprint()


def run_full_run() -> int:
    """The standard 4-hop, 10 s Muzha run; returns delivered packets."""
    result = run_chain(4, ["muzha"], config=ScenarioConfig(sim_time=10.0, seed=1))
    return result.total_delivered_packets


def _rate(work: Callable[[], int], reps: int) -> float:
    """Best observed ops/sec over ``reps`` repetitions."""
    best = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        ops = work()
        dt = time.perf_counter() - t0
        best = max(best, ops / dt)
    return best


def _engine_rate(pool_mode: str, reps: int) -> Tuple[float, str]:
    """Best units/sec plus the (mode-invariant) campaign fingerprint."""
    best, fingerprint = 0.0, None
    for _ in range(reps):
        t0 = time.perf_counter()
        units, fingerprint = run_engine_campaign(pool_mode)
        dt = time.perf_counter() - t0
        best = max(best, units / dt)
    return best, fingerprint


def measure_all(fast: bool = False) -> Dict[str, float]:
    """Run the whole suite; returns metric-name -> ops/sec.

    GC-frozen like ``bench_kernel.measure_all`` so import-graph growth
    cannot masquerade as an engine regression.
    """
    import gc

    from bench_kernel import run_calibration

    reps = 2 if fast else 3
    gc.freeze()
    try:
        calibration = _rate(run_calibration, 2 if fast else 5)
        warm, warm_fp = _engine_rate("warm", reps)
        per_attempt, pa_fp = _engine_rate("per-attempt", reps)
        if warm_fp != pa_fp:
            raise AssertionError(
                f"pool mode changed the campaign metrics: warm fingerprint "
                f"{warm_fp} != per-attempt {pa_fp}"
            )
        return {
            "calibration_ops_per_sec": calibration,
            "campaign_scenarios_per_sec": warm,
            "campaign_scenarios_per_sec_per_attempt": per_attempt,
            "full_run_packets_per_sec": _rate(run_full_run, 1 if fast else 2),
        }
    finally:
        gc.unfreeze()


# -- pytest-benchmark cases --------------------------------------------------

# Imported lazily in measure_all for the standalone path; pytest collection
# imports conftest helpers the usual way.
from conftest import banner, run_once  # noqa: E402


def test_warm_pool_beats_per_attempt(benchmark):
    """The persistent pool amortizes forks: >= 1.3x on the 48-unit grid.

    (The committed baseline documents >= 2x; the in-test floor is looser so
    hardware drift does not flake the suite.)
    """
    pa_start = time.perf_counter()
    _, pa_fp = run_engine_campaign("per-attempt")
    pa_elapsed = time.perf_counter() - pa_start

    warm_start = time.perf_counter()
    warm_fp = run_once(benchmark, lambda: run_engine_campaign("warm"))[1]
    warm_elapsed = time.perf_counter() - warm_start

    speedup = pa_elapsed / max(warm_elapsed, 1e-9)
    banner("campaign engine — warm pool vs fork-per-attempt")
    print(f"grid              : 48 units x {ENGINE_SIM_TIME:g}s, "
          f"workers={ENGINE_JOBS}")
    print(f"per-attempt       : {pa_elapsed:6.2f}s")
    print(f"warm pool         : {warm_elapsed:6.2f}s")
    print(f"speedup           : {speedup:5.2f}x")

    assert warm_fp == pa_fp, "pool mode changed the campaign's metrics"
    assert speedup >= 1.3, f"expected >=1.3x warm speedup, got {speedup:.2f}x"


def test_campaign_parallel_speedup(benchmark):
    """Serial vs 4-worker wall clock on an 8-scenario grid."""
    grid = _grid()

    serial_start = time.perf_counter()
    serial = run_campaign(grid, jobs=1)
    serial_elapsed = time.perf_counter() - serial_start

    parallel_start = time.perf_counter()
    parallel = run_once(benchmark, lambda: run_campaign(grid, jobs=4))
    parallel_elapsed = time.perf_counter() - parallel_start

    speedup = serial_elapsed / max(parallel_elapsed, 1e-9)
    banner("campaign engine — serial vs 4 workers")
    print(f"grid           : {len(grid)} scenarios x {SIM_TIME:g}s")
    print(f"serial (jobs=1): {serial_elapsed:6.2f}s")
    print(f"pool  (jobs=4) : {parallel_elapsed:6.2f}s")
    print(f"speedup        : {speedup:5.2f}x on {os.cpu_count()} cores")

    assert parallel.fingerprint() == serial.fingerprint(), (
        "worker count changed the campaign's metrics"
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, f"expected >=2x on >=4 cores, got {speedup:.2f}x"
    elif (os.cpu_count() or 1) < 2:
        pytest.skip(f"speedup not measurable on {os.cpu_count()} core(s)")


def test_campaign_warm_cache_executes_nothing(benchmark, tmp_path):
    """A warm cache must answer the grid with zero simulations, fast."""
    grid = _grid()
    cache = CampaignCache(tmp_path / "cache")
    cold = run_campaign(grid, jobs=1, cache=cache)
    assert cold.executed == len(grid)

    warm_start = time.perf_counter()
    warm = run_once(benchmark, lambda: run_campaign(grid, jobs=1, cache=cache))
    warm_elapsed = time.perf_counter() - warm_start

    banner("campaign engine — warm cache")
    print(f"cold: {cold.executed} simulated; warm: {warm.executed} simulated "
          f"in {warm_elapsed * 1e3:.1f} ms")
    assert warm.executed == 0
    assert warm.cache_hits == len(grid)
    assert warm.fingerprint() == cold.fingerprint()


# -- standalone runner -------------------------------------------------------


def load_baseline() -> dict:
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def build_report(current: Dict[str, float], baseline: dict) -> dict:
    """Current numbers alongside the committed baseline, drift-normalized."""
    committed = baseline.get("metrics", {})

    speed_factor = None
    cal_committed = committed.get("calibration_ops_per_sec")
    cal_current = current.get("calibration_ops_per_sec")
    if cal_committed and cal_current:
        speed_factor = cal_current / cal_committed

    metrics = {}
    for name, rate in current.items():
        entry = {"current": round(rate, 1)}
        if name in committed:
            entry["baseline"] = committed[name]
            entry["ratio_vs_baseline"] = round(rate / committed[name], 3)
            if speed_factor and name != "calibration_ops_per_sec":
                entry["ratio_vs_baseline_normalized"] = round(
                    rate / committed[name] / speed_factor, 3)
        metrics[name] = entry

    report = {
        "suite": "bench_campaign",
        "baseline_machine": baseline.get("machine", "unknown"),
        "grid": f"48 units ({len(GRID_VARIANTS) * len(ENGINE_HOPS)} scenarios "
                f"x {ENGINE_REPLICATIONS} replications x "
                f"{ENGINE_SIM_TIME:g}s), workers={ENGINE_JOBS}, uncached",
        "metrics": metrics,
    }
    warm = current.get("campaign_scenarios_per_sec")
    per_attempt = current.get("campaign_scenarios_per_sec_per_attempt")
    if warm and per_attempt:
        report["warm_speedup_vs_per_attempt"] = round(warm / per_attempt, 2)
    if speed_factor is not None:
        report["machine_speed_factor"] = round(speed_factor, 3)
    return report


def check_regression(report: dict, tolerance: float) -> list:
    """Metric names whose (calibration-normalized) rate dropped more than
    ``tolerance`` below the committed baseline."""
    failures = []
    for name, entry in report["metrics"].items():
        if name == "calibration_ops_per_sec":
            continue
        ratio = entry.get("ratio_vs_baseline_normalized",
                          entry.get("ratio_vs_baseline"))
        if ratio is not None and ratio < 1.0 - tolerance:
            failures.append(name)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="campaign engine benchmark suite")
    parser.add_argument("--json", default=str(DEFAULT_OUTPUT), metavar="PATH",
                        help="where to write BENCH_campaign.json")
    parser.add_argument("--fast", action="store_true",
                        help="fewer repetitions (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on a units/sec regression vs the baseline")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression with --check")
    args = parser.parse_args(argv)

    baseline = load_baseline()
    current = measure_all(fast=args.fast)
    report = build_report(current, baseline)

    width = max(len(name) for name in report["metrics"])
    for name, entry in report["metrics"].items():
        line = f"{name:<{width}}  {entry['current']:>12,.1f}/s"
        if "ratio_vs_baseline" in entry:
            line += f"  ({entry['ratio_vs_baseline']:.2f}x vs committed)"
        print(line)
    if "warm_speedup_vs_per_attempt" in report:
        print(f"\nwarm pool speedup vs fork-per-attempt: "
              f"{report['warm_speedup_vs_per_attempt']:.2f}x")

    out = Path(args.json)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report written to {out}")

    if args.check:
        failures = check_regression(report, args.tolerance)
        if failures:
            print(f"PERF REGRESSION (> {args.tolerance:.0%} below committed "
                  f"baseline): {', '.join(failures)}", file=sys.stderr)
            return 1
        print(f"perf check ok (all metrics within {args.tolerance:.0%} "
              "of the committed baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
