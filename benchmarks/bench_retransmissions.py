"""Figures 5.11–5.13: retransmissions vs number of hops per window.

Reuses the Fig 5.8–5.10 sweeps (session-cached).  Shape assertions follow
the paper:

* Muzha retransmits (much) less than NewReno and SACK overall — the
  precise-window-control claim;
* Vegas also stays low (its conservative window);
* at the largest advertised window the spread narrows (link-layer
  contention dominates everyone).
"""

from __future__ import annotations

import pytest

from repro.experiments import format_sweep

from conftest import banner, run_once


def _total_retx(sweep, variant):
    return sum(v for _, v in sweep.retransmit_series(variant))


@pytest.mark.parametrize("window", [4, 8, 32])
def test_fig5_11_to_13_retransmissions_vs_hops(benchmark, sweep_for_window, window):
    sweep = run_once(benchmark, lambda: sweep_for_window(window))
    figure = {4: "5.11", 8: "5.12", 32: "5.13"}[window]
    banner(f"Fig {figure} — Retransmissions vs. number of hops (window_={window})")
    print(format_sweep(sweep, metric="retransmits"))

    muzha = _total_retx(sweep, "muzha")
    newreno = _total_retx(sweep, "newreno")
    sack = _total_retx(sweep, "sack")
    vegas = _total_retx(sweep, "vegas")
    print(
        f"\ntotals: muzha={muzha:.1f} newreno={newreno:.1f} "
        f"sack={sack:.1f} vegas={vegas:.1f}"
    )
    # The paper's ordering: Muzha (and Vegas) well below NewReno/SACK.  At
    # window_=4 absolute counts are tiny (a handful per 30 s run), so the
    # comparison carries an absolute slack floor; at larger windows the
    # separation is an order of magnitude and the slack is irrelevant.
    slack = max(3.0, 0.2 * newreno)
    assert muzha <= newreno + slack, "Muzha must not retransmit more than NewReno"
    assert muzha <= sack + slack, "Muzha must not retransmit more than SACK"
    assert vegas <= newreno + slack, "Vegas must stay below NewReno"
