"""Cluster transport benchmarks: TCP agent scaling and dispatch overhead.

Not a paper figure — these measure the ``--pool-mode cluster`` backend
(PR 10): the campaign coordinator driving worker agents over localhost
TCP instead of forked pipe workers.  Metrics:

* ``cluster_scenarios_per_sec_1_agent`` — units/sec of the 48-unit
  engine grid through a single TCP agent.  Against the committed warm-pool
  number this is the price of JSON framing + socket hops when no
  parallelism is in play;
* ``cluster_scenarios_per_sec_2_agents`` / ``_4_agents`` — the same grid
  sharded across 2 and 4 agents by work-stealing dispatch.  The 2-agent
  speedup over 1 agent is the headline scaling claim: on >= 2 cores it
  must reach 1.7x (parallel efficiency >= 0.85), i.e. the transport may
  not eat the parallelism it exists to unlock;
* ``calibration_ops_per_sec`` — the machine-speed reference shared with
  ``bench_kernel``/``bench_campaign`` for drift-normalized comparisons.

Agent interpreter start-up (a fresh ``python -m repro.cli worker`` per
agent) is excluded from the timed region: agents are spawned and given a
settling window *before* the clock starts, mirroring a cluster where
agents are long-lived and campaigns come and go.  Every configuration
also asserts its campaign fingerprint equals the warm pool's — a faster
transport that changed the numbers would be a bug, not a win.

Two entry points, mirroring the other suites:

* ``python benchmarks/bench_cluster.py`` — prints a table, writes
  ``results/BENCH_cluster.json``, and with ``--check`` exits non-zero on
  a >30% (calibration-normalized) regression against the committed
  baseline or, on multi-core machines, a 2-agent efficiency below 0.85;
* ``pytest benchmarks/bench_cluster.py`` — the same claims as pytest
  cases, marked ``perf`` and excluded from tier-1.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.experiments import (
    ScenarioConfig,
    TcpTransport,
    chain_grid,
    run_campaign,
)

BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "bench_cluster_baseline.json"
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "results" / "BENCH_cluster.json"

pytestmark = pytest.mark.perf

#: The bench_campaign engine grid: 6 scenarios x 8 replications = 48 units
#: of 0.1 s simulations, short enough that dispatch/framing overhead is on
#: the critical path — which is exactly what this suite measures.
ENGINE_HOPS = (2, 3, 4)
ENGINE_VARIANTS = ("muzha", "newreno")
ENGINE_REPLICATIONS = 8
ENGINE_SIM_TIME = 0.1

#: Agent counts of the scaling ladder.
AGENT_COUNTS = (1, 2, 4)

#: Seconds the spawned agents get to finish interpreter start-up and dial
#: the listener before the timed region opens.
AGENT_SETTLE_S = 2.5

#: The 2-agent-vs-1 floors --check enforces on machines that can express
#: parallelism at all (>= 2 cores).
CHECK_MIN_SPEEDUP_2 = 1.7
CHECK_MIN_EFFICIENCY_2 = 0.85


def _engine_grid():
    return chain_grid(
        ENGINE_VARIANTS, ENGINE_HOPS,
        config=ScenarioConfig(sim_time=ENGINE_SIM_TIME, window=4),
    )


# -- measurement core --------------------------------------------------------


def run_cluster_campaign(agents: int) -> Tuple[float, str]:
    """One uncached 48-unit cluster campaign over ``agents`` TCP agents.

    Returns (units/sec of the timed region, campaign fingerprint).  The
    transport is opened and its agents spawned before the clock starts;
    they sit connected (hello sent, blocked awaiting the welcome) until
    the pool loop accepts them, so the timed region covers handshake,
    dispatch, execution and result framing — not CPython start-up.
    """
    grid = _engine_grid()
    total = len(grid) * ENGINE_REPLICATIONS
    transport = TcpTransport(spawn_agents=True)
    transport.open()
    try:
        for _ in range(agents):
            transport.spawn()
        deadline = time.monotonic() + AGENT_SETTLE_S
        while time.monotonic() < deadline and transport.pending_spawns < agents:
            time.sleep(0.05)
        time.sleep(AGENT_SETTLE_S)  # imports + dial, outside the clock
        t0 = time.perf_counter()
        result = run_campaign(
            grid, replications=ENGINE_REPLICATIONS, jobs=agents,
            pool_mode="cluster", transport=transport,
        )
        elapsed = time.perf_counter() - t0
    finally:
        transport.close()
    assert result.complete
    return total / elapsed, result.fingerprint()


def run_warm_reference() -> Tuple[float, str]:
    """The same grid through the warm pipe pool (fingerprint referee)."""
    grid = _engine_grid()
    total = len(grid) * ENGINE_REPLICATIONS
    t0 = time.perf_counter()
    result = run_campaign(
        grid, replications=ENGINE_REPLICATIONS, jobs=2, pool_mode="warm",
    )
    elapsed = time.perf_counter() - t0
    assert result.complete
    return total / elapsed, result.fingerprint()


def measure_all(fast: bool = False) -> Dict[str, float]:
    """Run the scaling ladder; returns metric-name -> units/sec.

    GC-frozen like the sibling suites so allocator churn from the import
    graph cannot masquerade as a transport regression.
    """
    import gc

    from bench_kernel import run_calibration

    reps = 1 if fast else 2
    gc.freeze()
    try:
        t0 = time.perf_counter()
        calibration_ops = run_calibration()
        calibration = calibration_ops / (time.perf_counter() - t0)

        _, warm_fp = run_warm_reference()
        metrics: Dict[str, float] = {
            "calibration_ops_per_sec": calibration,
        }
        for agents in AGENT_COUNTS:
            if fast and agents == 4:
                continue  # the smoke run only needs the 1-vs-2 claim
            best = 0.0
            for _ in range(reps):
                rate, fingerprint = run_cluster_campaign(agents)
                if fingerprint != warm_fp:
                    raise AssertionError(
                        f"cluster transport changed the campaign metrics: "
                        f"{agents}-agent fingerprint {fingerprint} != warm "
                        f"{warm_fp}"
                    )
                best = max(best, rate)
            suffix = "agent" if agents == 1 else "agents"
            metrics[f"cluster_scenarios_per_sec_{agents}_{suffix}"] = best
        return metrics
    finally:
        gc.unfreeze()


# -- pytest cases ------------------------------------------------------------

from conftest import banner, run_once  # noqa: E402


def test_cluster_fingerprint_matches_warm_pool(benchmark):
    """The TCP backend is a pure transport change: same bytes as warm."""
    _, warm_fp = run_warm_reference()
    rate, cluster_fp = run_once(
        benchmark, lambda: run_cluster_campaign(2)
    )
    banner("cluster transport — fingerprint parity")
    print(f"2-agent TCP cluster: {rate:8.1f} units/s")
    assert cluster_fp == warm_fp, (
        "cluster transport changed the campaign's metrics"
    )


def test_two_agents_beat_one_on_multicore(benchmark):
    """Work-stealing over TCP must scale: 2 agents >= 1.3x one agent.

    (The committed bar for --check on multi-core machines is 1.7x /
    0.85 efficiency; the in-test floor is looser so hardware drift does
    not flake the suite.)
    """
    if (os.cpu_count() or 1) < 2:
        pytest.skip(f"parallel speedup not measurable on "
                    f"{os.cpu_count()} core(s)")
    one, _ = run_cluster_campaign(1)
    two, _ = run_once(benchmark, lambda: run_cluster_campaign(2))
    speedup = two / max(one, 1e-9)
    banner("cluster transport — 1 vs 2 agents")
    print(f"1 agent : {one:8.1f} units/s")
    print(f"2 agents: {two:8.1f} units/s  ({speedup:.2f}x, "
          f"efficiency {speedup / 2:.2f})")
    assert speedup >= 1.3, f"expected >=1.3x with 2 agents, got {speedup:.2f}x"


# -- standalone runner -------------------------------------------------------


def load_baseline() -> dict:
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def build_report(current: Dict[str, float], baseline: dict) -> dict:
    """Current numbers alongside the committed baseline, drift-normalized."""
    committed = baseline.get("metrics", {})

    speed_factor = None
    cal_committed = committed.get("calibration_ops_per_sec")
    cal_current = current.get("calibration_ops_per_sec")
    if cal_committed and cal_current:
        speed_factor = cal_current / cal_committed

    metrics = {}
    for name, rate in current.items():
        entry = {"current": round(rate, 1)}
        if name in committed:
            entry["baseline"] = committed[name]
            entry["ratio_vs_baseline"] = round(rate / committed[name], 3)
            if speed_factor and name != "calibration_ops_per_sec":
                entry["ratio_vs_baseline_normalized"] = round(
                    rate / committed[name] / speed_factor, 3)
        metrics[name] = entry

    report = {
        "suite": "bench_cluster",
        "baseline_machine": baseline.get("machine", "unknown"),
        "cores": os.cpu_count(),
        "grid": f"48 units ({len(ENGINE_VARIANTS) * len(ENGINE_HOPS)} "
                f"scenarios x {ENGINE_REPLICATIONS} replications x "
                f"{ENGINE_SIM_TIME:g}s), localhost TCP agents, uncached",
        "metrics": metrics,
    }
    one = current.get("cluster_scenarios_per_sec_1_agent")
    two = current.get("cluster_scenarios_per_sec_2_agents")
    four = current.get("cluster_scenarios_per_sec_4_agents")
    if one and two:
        report["speedup_2_agents_vs_1"] = round(two / one, 2)
        report["parallel_efficiency_2_agents"] = round(two / one / 2, 3)
    if one and four:
        report["speedup_4_agents_vs_1"] = round(four / one, 2)
        report["parallel_efficiency_4_agents"] = round(four / one / 4, 3)
    if speed_factor is not None:
        report["machine_speed_factor"] = round(speed_factor, 3)
    return report


def check_regression(report: dict, tolerance: float) -> list:
    """Failures: per-metric (calibration-normalized) rate drops beyond
    ``tolerance``, plus — on machines with >= 2 cores — the 2-agent
    scaling floors (single-core containers cannot express parallelism,
    exactly as ``bench_campaign`` gates its speedup assertion)."""
    failures = []
    for name, entry in report["metrics"].items():
        if name == "calibration_ops_per_sec":
            continue
        ratio = entry.get("ratio_vs_baseline_normalized",
                          entry.get("ratio_vs_baseline"))
        if ratio is not None and ratio < 1.0 - tolerance:
            failures.append(name)
    if (os.cpu_count() or 1) >= 2:
        speedup = report.get("speedup_2_agents_vs_1")
        efficiency = report.get("parallel_efficiency_2_agents")
        if speedup is not None and speedup < CHECK_MIN_SPEEDUP_2:
            failures.append(
                f"speedup_2_agents_vs_1 {speedup:.2f} < {CHECK_MIN_SPEEDUP_2}"
            )
        if efficiency is not None and efficiency < CHECK_MIN_EFFICIENCY_2:
            failures.append(
                f"parallel_efficiency_2_agents {efficiency:.2f} < "
                f"{CHECK_MIN_EFFICIENCY_2}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cluster transport benchmark suite"
    )
    parser.add_argument("--json", default=str(DEFAULT_OUTPUT), metavar="PATH",
                        help="where to write BENCH_cluster.json")
    parser.add_argument("--fast", action="store_true",
                        help="fewer repetitions, skip the 4-agent rung "
                             "(CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on a units/sec regression vs the "
                             "baseline, or (multi-core) 2-agent efficiency "
                             f"below {CHECK_MIN_EFFICIENCY_2}")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression with --check")
    args = parser.parse_args(argv)

    baseline = load_baseline()
    current = measure_all(fast=args.fast)
    report = build_report(current, baseline)

    width = max(len(name) for name in report["metrics"])
    for name, entry in report["metrics"].items():
        line = f"{name:<{width}}  {entry['current']:>12,.1f}/s"
        if "ratio_vs_baseline" in entry:
            line += f"  ({entry['ratio_vs_baseline']:.2f}x vs committed)"
        print(line)
    if "speedup_2_agents_vs_1" in report:
        print(f"\n2 agents vs 1: {report['speedup_2_agents_vs_1']:.2f}x "
              f"(efficiency {report['parallel_efficiency_2_agents']:.2f}) "
              f"on {os.cpu_count()} core(s)")
    if "speedup_4_agents_vs_1" in report:
        print(f"4 agents vs 1: {report['speedup_4_agents_vs_1']:.2f}x "
              f"(efficiency {report['parallel_efficiency_4_agents']:.2f})")

    out = Path(args.json)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report written to {out}")

    if args.check:
        failures = check_regression(report, args.tolerance)
        if failures:
            print(f"PERF REGRESSION (vs committed baseline / scaling "
                  f"floors): {', '.join(failures)}", file=sys.stderr)
            return 1
        floors = ("incl. 2-agent scaling floors"
                  if (os.cpu_count() or 1) >= 2
                  else "scaling floors skipped on 1 core")
        print(f"perf check ok (all metrics within {args.tolerance:.0%} "
              f"of the committed baseline; {floors})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
