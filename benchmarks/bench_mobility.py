"""Extension benchmark: TCP Muzha vs NewReno under node mobility.

Not a paper figure — the paper's §6 lists mobility support as future work.
A random network roams under random-waypoint motion while a bulk flow runs
corner-to-corner; we compare goodput and TCP-level retransmissions.  The
assertion is survival-shaped: both protocols must keep delivering, and
Muzha must not do worse than NewReno on retransmissions (its feedback keeps
the window small, which helps when paths churn).
"""

from __future__ import annotations

import statistics

from repro.core import install_drai
from repro.experiments import full_scale
from repro.phy import Area, Position, RandomWaypointMobility
from repro.routing import install_aodv_routing
from repro.topology import make_network
from repro.traffic import start_ftp

from conftest import banner, run_once

SEEDS = (1, 2, 3, 4, 5) if full_scale() else (1, 2, 3)
SIM_TIME = 40.0 if full_scale() else 20.0
SIDE = 700.0


def _run(variant, seed):
    net = make_network(seed=seed)
    rng = net.sim.stream("placement")
    for _ in range(12):
        net.add_node(Position(rng.uniform(0, SIDE), rng.uniform(0, SIDE)))
    install_aodv_routing(net.nodes, net.sim)
    if variant.startswith("muzha"):
        install_drai(net.nodes, net.sim)
    RandomWaypointMobility(
        net.sim,
        net.channel,
        [n.radio for n in net.nodes],
        Area(0.0, 0.0, SIDE, SIDE),
        speed_range=(2.0, 10.0),
        pause_time=1.0,
    ).start()
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant=variant, window=4)
    net.sim.run(until=SIM_TIME)
    return flow


def test_mobility_extension(benchmark):
    def campaign():
        rows = {}
        for variant in ("muzha", "newreno"):
            goodputs, retx = [], []
            for seed in SEEDS:
                flow = _run(variant, seed)
                goodputs.append(flow.goodput_kbps(SIM_TIME))
                retx.append(flow.sender.stats.retransmits)
            rows[variant] = (statistics.mean(goodputs), statistics.mean(retx))
        return rows

    rows = run_once(benchmark, campaign)
    banner("Extension — random-waypoint mobility (12 nodes, 700 m field)")
    for variant, (goodput, retx) in rows.items():
        print(f"  {variant:8s}: goodput={goodput:7.1f} kbps  retx={retx:5.1f}")
    for variant, (goodput, _) in rows.items():
        assert goodput > 10.0, f"{variant} died under mobility"
    assert rows["muzha"][1] <= rows["newreno"][1] + 3.0
