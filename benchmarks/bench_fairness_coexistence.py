"""Figures 5.14–5.18: Simulation 3A — fairness while coexisting.

Two FTP flows on the Fig 5.15 h-hop cross: the paper runs NewReno vs Vegas
and NewReno vs Muzha, evaluates per-flow throughput (Figs 5.16/5.17) and
Jain's fairness index (Figs 5.14 definition, 5.18 values).  We additionally
print the Muzha-vs-Muzha and NewReno-vs-NewReno controls.

Shape assertions:

* the Muzha pairing is the fairest and NewReno-vs-Vegas the least fair
  (the paper's Fig 5.18 ordering);
* the Muzha-vs-NewReno pairing reaches a high fairness index;
* aggregate goodput stays healthy in all pairings.
"""

from __future__ import annotations

import statistics

import pytest

from repro.experiments import (
    export_coexistence_csv,
    fig_coexistence,
    format_coexistence,
    full_scale,
)
from repro.stats import jain_index

from conftest import banner, figures_dir, run_once

HOPS = (4, 6, 8) if full_scale() else (4,)
SIM_TIME = 50.0 if full_scale() else 25.0
SEEDS = (1, 2, 3, 4, 5) if full_scale() else (1, 2, 3)


def _campaign():
    pairings = [
        ("newreno", "vegas"),
        ("newreno", "muzha"),
        ("muzha", "muzha"),
        ("newreno", "newreno"),
    ]
    return {
        pair: fig_coexistence(
            pair[0], pair[1], hops_list=HOPS, sim_time=SIM_TIME, seeds=SEEDS
        )
        for pair in pairings
    }


def test_fig5_14_jain_index_definition(benchmark):
    """Fig 5.14 is the Jain index formula itself; verify it on the paper's
    style of input and on degenerate cases."""

    def campaign():
        return {
            "equal": jain_index([100.0, 100.0]),
            "starved": jain_index([190.0, 10.0]),
            "single": jain_index([42.0]),
        }

    values = run_once(benchmark, campaign)
    banner("Fig 5.14 — Jain's fairness index (definition check)")
    for name, value in values.items():
        print(f"{name:>8s}: {value:.4f}")
    assert values["equal"] == pytest.approx(1.0)
    assert values["starved"] == pytest.approx(
        (200.0**2) / (2 * (190.0**2 + 10.0**2))
    )
    assert values["single"] == pytest.approx(1.0)


def test_fig5_16_to_18_coexistence(benchmark):
    results = run_once(benchmark, _campaign)

    banner("Fig 5.16 — Throughput for coexisting NewReno and Vegas")
    print(format_coexistence(results[("newreno", "vegas")], "newreno", "vegas"))
    banner("Fig 5.17 — Throughput for coexisting NewReno and Muzha")
    print(format_coexistence(results[("newreno", "muzha")], "newreno", "muzha"))
    for pair, figure in [(("newreno", "vegas"), "5.16"), (("newreno", "muzha"), "5.17")]:
        export_coexistence_csv(
            results[pair], pair[0], pair[1],
            figures_dir() / f"fig{figure}_coexistence.csv",
        )
    banner("Fig 5.18 — Fairness index for coexisting flows")
    rows = []
    fairness = {}
    for pair, points in results.items():
        mean_fairness = statistics.mean(p.fairness for p in points)
        fairness[pair] = mean_fairness
        rows.append((f"{pair[0]} + {pair[1]}", f"{mean_fairness:.3f}"))
    for label, value in rows:
        print(f"  {label:24s} {value}")

    # Paper ordering: Muzha pairings fairest, NewReno+Vegas least fair.
    assert fairness[("muzha", "muzha")] > fairness[("newreno", "vegas")], (
        "Muzha flows must share more fairly than the NewReno/Vegas mix"
    )
    assert fairness[("newreno", "muzha")] >= 0.75, (
        "Muzha must coexist fairly with NewReno (paper Fig 5.18)"
    )
    assert fairness[("muzha", "muzha")] >= 0.85

    # Both flows alive in the Muzha pairing (no capture starvation).
    for point in results[("newreno", "muzha")]:
        assert point.goodput_a_kbps > 10.0 and point.goodput_b_kbps > 10.0
