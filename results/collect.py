"""Collect the paper-scale campaign results recorded in EXPERIMENTS.md.

Run:  REPRO_FULL=1 python results/collect.py
"""
import statistics, sys, time

from repro.experiments import (
    PAPER_VARIANTS, ScenarioConfig, SweepConfig, fig_coexistence,
    fig_dynamics, format_coexistence, format_sweep, throughput_retransmit_sweep,
)
from repro.stats import jain_index

t0 = time.time()
sweep_cfg = SweepConfig(hops=(4, 8, 16, 32), seeds=(1, 2, 3), sim_time=30.0)
for window in (4, 8, 32):
    sweep = throughput_retransmit_sweep(window, sweep=sweep_cfg)
    print(format_sweep(sweep, metric="goodput"), flush=True)
    print(format_sweep(sweep, metric="retransmits"), flush=True)
    print(flush=True)

for a, b in [("newreno", "vegas"), ("newreno", "muzha"), ("muzha", "muzha"), ("newreno", "newreno")]:
    points = fig_coexistence(a, b, hops_list=(4, 6, 8), sim_time=50.0, seeds=(1, 2, 3, 4, 5))
    print(format_coexistence(points, a, b), flush=True)
    print(flush=True)

for variant in PAPER_VARIANTS:
    result = fig_dynamics(variant, hops=4, starts=(0, 10, 20), sim_time=40.0, seed=1, window=4)
    shares = []
    for flow in result.flows:
        tail = [r for t, r in flow.rate_series_kbps if t >= 30.0]
        shares.append(sum(tail) / len(tail) if tail else 0.0)
    print(f"dynamics {variant}: shares={[round(s,1) for s in shares]} jain={jain_index(shares):.3f}", flush=True)

print(f"\ntotal wall time: {time.time()-t0:.0f}s", flush=True)
