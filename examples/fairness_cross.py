#!/usr/bin/env python
"""Fairness at an intersection (the paper's Simulation 3A).

Scenario: two community mesh backhauls crossing at a shared relay — one
flow runs west-to-east, one north-to-south, and every byte of both must be
forwarded by the centre node.  We pit protocol pairings against each other
and report per-flow goodput and Jain's fairness index (Figs 5.16–5.18).

Run:  python examples/fairness_cross.py
"""

from repro.experiments import fig_coexistence, format_coexistence


def main() -> None:
    pairings = [
        ("newreno", "vegas"),
        ("newreno", "muzha"),
        ("muzha", "muzha"),
    ]
    print("Two FTP flows crossing on a 4-hop cross topology (25 s, 3 seeds)\n")
    for a, b in pairings:
        points = fig_coexistence(
            a, b, hops_list=(4,), sim_time=25.0, seeds=(1, 2, 3)
        )
        print(format_coexistence(points, a, b))
        print()
    print(
        "Expected shape (paper Fig 5.18): the Muzha pairing shares most\n"
        "fairly; the router feedback throttles whichever flow is hogging\n"
        "the shared centre before the other starves."
    )


if __name__ == "__main__":
    main()
