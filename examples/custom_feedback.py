#!/usr/bin/env python
"""Extending the library: custom router-feedback policies and TCP variants.

The paper's §6 future work asks for richer DRAI formulas.  This example
shows the extension points a downstream user has:

1. a custom :class:`DraiEstimator` subclass installed on every node (the
   ECN-style ``BinaryFeedbackDrai`` ablation, and an inline "optimist"
   that never recommends braking — deliberately bad, to show the cost);
2. a custom TCP sender registered under its own variant name (an inline
   Muzha that halves on timeout instead of collapsing to one segment).

The scenario is a lossy 6-hop chain (8% random frame loss), where feedback
quality visibly matters.

Run:  python examples/custom_feedback.py
"""

from repro.core import BinaryFeedbackDrai, DraiEstimator, TcpMuzha, compute_drai, install_drai
from repro.phy import PacketErrorRate
from repro.routing import install_aodv_routing
from repro.topology import build_chain
from repro.traffic import start_ftp
from repro.transport import register_variant


class OptimistDrai(DraiEstimator):
    """Never recommends deceleration or holding (floors the DRAI at 4).

    Deliberately bad: it removes the feedback loop's braking half, so the
    window drifts to the advertised cap and self-inflicts contention.
    """

    def _compute(self, queue_len, utilization, occupancy):
        return max(compute_drai(queue_len, utilization, occupancy, self.params), 4)


class TcpMuzhaGentle(TcpMuzha):
    """A Muzha that halves on timeouts instead of collapsing to 1."""

    variant = "muzha-gentle"

    def _on_timeout(self) -> None:
        self._set_cwnd(max(self.cwnd / 2.0, 1.0))
        self.in_recovery = False
        self._adjust_barrier = self.snd_una


register_variant("muzha-gentle", TcpMuzhaGentle)


def run(estimator_cls, variant):
    net = build_chain(6, seed=3, error_model=PacketErrorRate(0.08))
    install_aodv_routing(net.nodes, net.sim)
    install_drai(net.nodes, net.sim, estimator_cls=estimator_cls)
    flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant=variant, window=16)
    net.sim.run(until=15.0)
    return flow


def main() -> None:
    print("Lossy 6-hop chain (8% frame loss), 15 s, window_=16:\n")
    for label, estimator_cls, variant in [
        ("stock five-level DRAI", DraiEstimator, "muzha"),
        ("binary ECN-style DRAI", BinaryFeedbackDrai, "muzha"),
        ("optimist DRAI (no braking)", OptimistDrai, "muzha"),
        ("stock DRAI + gentle timeouts", DraiEstimator, "muzha-gentle"),
    ]:
        flow = run(estimator_cls, variant)
        print(
            f"  {label:30s}: {flow.goodput_kbps(15.0):8.1f} kbps, "
            f"{flow.sender.stats.retransmits} retx, "
            f"{flow.sender.stats.timeouts} timeouts"
        )
    print(
        "\nEach row swaps exactly one policy; use these hooks to prototype"
        "\nyour own router-assist formula (the paper's §6 future work)."
    )


if __name__ == "__main__":
    main()
