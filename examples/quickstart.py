#!/usr/bin/env python
"""Quickstart: one TCP Muzha flow over a 4-hop wireless chain.

Builds the paper's basic scenario (Fig 5.1) with the public API, runs ten
simulated seconds, and prints the goodput, the retransmission counters and
an ASCII congestion-window trace.

Run:  python examples/quickstart.py
"""

from repro.experiments import ScenarioConfig, ascii_series, run_chain
from repro.stats import resample


def main() -> None:
    config = ScenarioConfig(sim_time=10.0, seed=1, window=8, routing="aodv")
    result = run_chain(hops=4, variants=["muzha"], config=config)
    flow = result.flows[0]

    print("TCP Muzha over a 4-hop 802.11 chain (2 Mb/s links, AODV)")
    print(f"  goodput          : {flow.goodput_kbps:8.1f} kbps")
    print(f"  packets delivered: {flow.delivered_packets}")
    print(f"  retransmissions  : {flow.retransmits}")
    print(f"  timeouts         : {flow.timeouts}")
    print(f"  MAC drops (path) : {result.mac_drops}")
    print()
    # The trace is event-based; resample it onto a regular grid so the
    # chart spans the whole run.
    grid = resample(flow.cwnd_trace, 0.0, config.sim_time, 0.1)
    print(ascii_series(grid, label="congestion window (packets) over 10 s"))

    # The same scenario with the paper's main baseline, for comparison.
    baseline = run_chain(hops=4, variants=["newreno"], config=config).flows[0]
    print()
    print(f"NewReno on the identical scenario: {baseline.goodput_kbps:8.1f} kbps, "
          f"{baseline.retransmits} retransmissions")


if __name__ == "__main__":
    main()
