#!/usr/bin/env python
"""Random-loss resilience (the paper's §4.7 motivation).

Scenario: a vehicle-mounted node streaming telemetry across a lossy
wireless backbone — frames die randomly (interference, fading), not from
congestion.  Loss-driven TCP halves its window on every loss event; TCP
Muzha's marked/unmarked duplicate-ACK classification retransmits without
shrinking.  We sweep the per-frame loss probability and also demonstrate
the bursty Gilbert-Elliott error model.

Run:  python examples/random_loss_resilience.py
"""

from repro.core import install_drai
from repro.experiments import ScenarioConfig, format_table, run_chain
from repro.phy import GilbertElliott
from repro.routing import install_aodv_routing
from repro.topology import build_chain
from repro.traffic import start_ftp


def uniform_loss_sweep() -> None:
    rows = []
    for loss in (0.0, 0.02, 0.05, 0.10):
        for variant in ("muzha", "newreno"):
            config = ScenarioConfig(
                sim_time=20.0, seed=1, window=8, packet_error_rate=loss
            )
            flow = run_chain(4, [variant], config=config).flows[0]
            rows.append(
                (f"{loss:.0%}", variant, f"{flow.goodput_kbps:8.1f}", flow.retransmits)
            )
    print(
        format_table(
            ["frame loss", "variant", "goodput (kbps)", "retx"],
            rows,
            title="Uniform random frame loss on a 4-hop chain (20 s)",
        )
    )


def bursty_loss_demo() -> None:
    print("\nBursty (Gilbert-Elliott) loss, 4-hop chain, 20 s:")
    for variant in ("muzha", "newreno"):
        net = build_chain(
            4,
            seed=2,
            error_model=GilbertElliott(
                ber_good=0.0, ber_bad=5e-5, mean_good=2.0, mean_bad=0.3
            ),
        )
        install_aodv_routing(net.nodes, net.sim)
        if variant == "muzha":
            install_drai(net.nodes, net.sim)
        flow = start_ftp(net.sim, net.nodes[0], net.nodes[-1], variant=variant, window=8)
        net.sim.run(until=20.0)
        extra = ""
        if variant == "muzha":
            stats = flow.sender.muzha
            extra = (
                f"  (classified: {stats.random_loss_events} random, "
                f"{stats.marked_loss_events} congestion)"
            )
        print(
            f"  {variant:8s}: {flow.goodput_kbps(20.0):8.1f} kbps, "
            f"{flow.sender.stats.retransmits} retx{extra}"
        )


def main() -> None:
    uniform_loss_sweep()
    bursty_loss_demo()


if __name__ == "__main__":
    main()
