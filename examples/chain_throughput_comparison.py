#!/usr/bin/env python
"""Multihop bulk-transfer comparison (the paper's Simulation 2, scaled down).

Scenario: a sensor-network-style backbone — a chain of relay nodes carrying
a bulk FTP transfer end to end.  We sweep the chain length and compare all
four protocols' goodput and retransmission counts, i.e. a quick version of
Figs 5.8/5.11.

Run:  python examples/chain_throughput_comparison.py [--hops 4 8 16]
"""

import argparse

from repro.experiments import (
    PAPER_VARIANTS,
    ScenarioConfig,
    format_table,
    run_chain,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hops", type=int, nargs="+", default=[4, 8, 16])
    parser.add_argument("--window", type=int, default=8)
    parser.add_argument("--time", type=float, default=15.0)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    rows = []
    for hops in args.hops:
        for variant in PAPER_VARIANTS:
            config = ScenarioConfig(
                sim_time=args.time, seed=args.seed, window=args.window
            )
            flow = run_chain(hops, [variant], config=config).flows[0]
            rows.append(
                (
                    hops,
                    variant,
                    f"{flow.goodput_kbps:8.1f}",
                    flow.retransmits,
                    flow.timeouts,
                )
            )
    print(
        format_table(
            ["hops", "variant", "goodput (kbps)", "retx", "timeouts"],
            rows,
            title=f"Bulk transfer over an h-hop chain (window_={args.window}, "
            f"{args.time:g}s)",
        )
    )


if __name__ == "__main__":
    main()
